(* Unit tests: Dsp blocks — Fir, Biquad, Moving_average, Cordic,
   Slicer, Pam, Channel_model.  Each block's simulated (dual fixed/float)
   behaviour is cross-checked against its pure float reference. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

(* --- Fir --------------------------------------------------------------- *)

let test_fir_impulse_response () =
  (* the registered delay line (the paper's regarray) gives the block
     one cycle of latency: h appears at t = 1.. *)
  let env = Sim.Env.create () in
  let coefs = [| 0.5; -0.25; 0.125 |] in
  let fir = Dsp.Fir.create env ~coefs () in
  let outs = ref [] in
  Sim.Engine.run env ~cycles:5 (fun i ->
      let x = if i = 0 then 1.0 else 0.0 in
      outs := Sim.Value.fx (Dsp.Fir.step fir (cst x)) :: !outs);
  let outs = Array.of_list (List.rev !outs) in
  check (float_t 1e-12) "latency cycle" 0.0 outs.(0);
  Array.iteri
    (fun i c ->
      check (float_t 1e-12) (Printf.sprintf "h[%d]" i) c outs.(i + 1))
    coefs;
  check (float_t 1e-12) "tail zero" 0.0 outs.(4)

let test_fir_matches_reference () =
  let env = Sim.Env.create () in
  let coefs = [| 0.1; 0.4; -0.2; 0.3 |] in
  let fir = Dsp.Fir.create env ~coefs () in
  let rng = Stats.Rng.create ~seed:8 in
  let input = Array.init 50 (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let expected = Dsp.Fir.reference ~coefs input in
  let i = ref 0 in
  Sim.Engine.run env ~cycles:50 (fun _ ->
      let out = Dsp.Fir.step fir (cst input.(!i)) in
      (* one-cycle register latency: out(t) = reference(t-1) *)
      if !i > 0 then
        check (float_t 1e-12)
          (Printf.sprintf "sample %d" !i)
          expected.(!i - 1) (Sim.Value.fx out);
      incr i)

let test_fir_worst_case_gain () =
  check (float_t 1e-12) "sum |c|" 0.85
    (Dsp.Fir.worst_case_gain [| 0.5; -0.25; 0.1 |])

let test_fir_sfg_range_matches_gain () =
  let coefs = [| 0.5; -0.25; 0.1 |] in
  let g = Sfg.Graph.create () in
  let _, y = Dsp.Fir.to_sfg g ~coefs ~input_range:(-2.0, 2.0) in
  Sfg.Graph.mark_output g "y" y;
  let r = Sfg.Range_analysis.run g in
  let node_name = "v[3]" in
  match Sfg.Range_analysis.range_of r node_name with
  | Some iv ->
      check (float_t 1e-9) "worst case bound" (0.85 *. 2.0) (Interval.hi iv)
  | None -> Alcotest.fail "no range"

let test_fir_sfg_simulation_agree () =
  (* the sim-level FIR and the SFG interpreter compute the same samples *)
  let coefs = [| 0.3; -0.6; 0.2 |] in
  let rng = Stats.Rng.create ~seed:91 in
  let input = Array.init 30 (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let g = Sfg.Graph.create () in
  let _, y = Dsp.Fir.to_sfg g ~coefs ~input_range:(-1.0, 1.0) in
  Sfg.Graph.mark_output g "y" y;
  let traces = Sfg.Graph.simulate g ~steps:30 ~inputs:(fun _ i -> input.(i)) in
  let sfg_y = List.assoc "v[3]" traces in
  let expected = Dsp.Fir.reference ~coefs input in
  (* same one-cycle latency as the sim-level block: d[0] is a delay *)
  Array.iteri
    (fun i v ->
      if i > 0 then
        check (float_t 1e-12) (Printf.sprintf "t%d" i) expected.(i - 1) v)
    sfg_y

(* --- Biquad ------------------------------------------------------------ *)

let test_biquad_matches_reference () =
  let env = Sim.Env.create () in
  let coeffs = Dsp.Biquad.resonator ~r:0.9 ~theta:0.8 in
  let bq = Dsp.Biquad.create env coeffs in
  let rng = Stats.Rng.create ~seed:14 in
  let input = Array.init 100 (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let expected = Dsp.Biquad.reference coeffs input in
  let i = ref 0 in
  Sim.Engine.run env ~cycles:100 (fun _ ->
      let out = Dsp.Biquad.step bq (cst input.(!i)) in
      check (float_t 1e-9)
        (Printf.sprintf "sample %d" !i)
        expected.(!i) (Sim.Value.fx out);
      incr i)

let test_biquad_resonator_dc_gain () =
  let c = Dsp.Biquad.resonator ~r:0.5 ~theta:1.0 in
  let input = Array.make 2000 1.0 in
  let out = Dsp.Biquad.reference c input in
  check (float_t 1e-6) "unity DC gain" 1.0 out.(1999)

let test_biquad_l1_gain_grows_with_r () =
  let g r = Dsp.Biquad.l1_gain (Dsp.Biquad.resonator ~r ~theta:0.8) in
  check bool_t "sharper pole larger gain" true (g 0.95 > g 0.5)

let test_biquad_sfg_explodes_near_instability () =
  (* r = 0.99: interval analysis cannot see pole damping; must explode *)
  let g = Sfg.Graph.create () in
  let c = Dsp.Biquad.resonator ~r:0.99 ~theta:0.3 in
  let _ = Dsp.Biquad.to_sfg ~input_range:(-1.0, 1.0) c g in
  let r = Sfg.Range_analysis.run g in
  check bool_t "feedback explodes" true (r.Sfg.Range_analysis.exploded <> [])

let test_biquad_sfg_bounded_with_annotation () =
  let g = Sfg.Graph.create () in
  let c = Dsp.Biquad.resonator ~r:0.5 ~theta:1.2 in
  let bound = Dsp.Biquad.l1_gain c in
  let _ =
    Dsp.Biquad.to_sfg ~input_range:(-1.0, 1.0) ~y_range:(-.bound, bound) c g
  in
  let r = Sfg.Range_analysis.run g in
  check bool_t "no explosion" true (r.Sfg.Range_analysis.exploded = [])

(* --- Moving_average ---------------------------------------------------- *)

let test_moving_average_reference () =
  let n = 4 in
  let rng = Stats.Rng.create ~seed:55 in
  let input = Array.init 40 (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let expected = Dsp.Moving_average.reference ~n input in
  let env = Sim.Env.create () in
  let ma = Dsp.Moving_average.create env ~n () in
  let i = ref 0 in
  Sim.Engine.run env ~cycles:40 (fun _ ->
      let out = Dsp.Moving_average.step ma (cst input.(!i)) in
      check (float_t 1e-9)
        (Printf.sprintf "t%d" !i)
        expected.(!i) (Sim.Value.fx out);
      incr i)

let test_moving_average_accumulator_flagged () =
  (* the recursive accumulator's propagated range must dwarf its
     statistic range — the §5.1 case-(b) pattern *)
  let env = Sim.Env.create () in
  let ma = Dsp.Moving_average.create env ~n:4 () in
  let rng = Stats.Rng.create ~seed:6 in
  Sim.Engine.run env ~cycles:2000 (fun _ ->
      ignore
        (Dsp.Moving_average.step ma
           (cst (Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))));
  let acc = Dsp.Moving_average.accumulator ma in
  let d = Refine.Msb_rules.decide acc in
  check bool_t "saturation recommended" true
    (d.Refine.Decision.case = Refine.Decision.Prop_pessimistic)

(* --- Cordic ------------------------------------------------------------ *)

let test_cordic_gain () =
  check (float_t 1e-3) "K ~ 1.6468" 1.6468 (Dsp.Cordic.gain 12)

let test_cordic_rotation_accuracy () =
  let env = Sim.Env.create () in
  let iters = 16 in
  let c = Dsp.Cordic.create env ~iters () in
  List.iter
    (fun (x, y, z) ->
      let xo, yo = Dsp.Cordic.rotate c ~x:(cst x) ~y:(cst y) ~z:(cst z) in
      let xr, yr = Dsp.Cordic.reference ~iters ~x ~y ~z in
      check (float_t 1e-3) "x" xr (Sim.Value.fx xo);
      check (float_t 1e-3) "y" yr (Sim.Value.fx yo);
      Sim.Env.tick env)
    [ (1.0, 0.0, 0.5); (0.7, -0.7, -1.2); (0.0, 1.0, 1.5); (0.5, 0.5, 0.0) ]

let test_cordic_angle_error_bound () =
  check bool_t "bound decreases" true
    (Dsp.Cordic.angle_error_bound 16 < Dsp.Cordic.angle_error_bound 8)

let test_cordic_bad_iters () =
  let env = Sim.Env.create () in
  check bool_t "rejects 0" true
    (try
       ignore (Dsp.Cordic.create env ~iters:0 ());
       false
     with Invalid_argument _ -> true)

(* --- Slicer / Pam ------------------------------------------------------ *)

let test_slicer_decisions () =
  let env = Sim.Env.create () in
  let s = Dsp.Slicer.create env "y" in
  check (float_t 0.0) "positive" 1.0
    (Sim.Value.fx (Dsp.Slicer.step s (cst 0.3)));
  check (float_t 0.0) "negative" (-1.0)
    (Sim.Value.fx (Dsp.Slicer.step s (cst (-0.001))))

let test_slicer_steered_by_fixed () =
  let env = Sim.Env.create () in
  let s = Dsp.Slicer.create env "y" in
  (* fx positive, fl negative: the decision (and both outputs) follow fx *)
  let v = Sim.Value.with_range { (Sim.Value.const 0.2) with Sim.Value.fl = -0.2 }
      (Interval.make (-0.2) 0.2) in
  let out = Dsp.Slicer.step s v in
  check (float_t 0.0) "fx decision" 1.0 (Sim.Value.fx out);
  check (float_t 0.0) "fl follows control" 1.0 (Sim.Value.fl out)

let test_pam_decide_levels () =
  check (float_t 1e-12) "snap to 1/3" (1.0 /. 3.0)
    (Dsp.Slicer.decide_pam ~m:4 0.4);
  check (float_t 1e-12) "snap to -1" (-1.0) (Dsp.Slicer.decide_pam ~m:4 (-0.95))

let test_raised_cosine_nyquist () =
  check (float_t 1e-9) "p(0)=1" 1.0 (Dsp.Pam.raised_cosine ~beta:0.35 0.0);
  List.iter
    (fun k ->
      check (float_t 1e-9)
        (Printf.sprintf "p(%d)=0" k)
        0.0
        (Dsp.Pam.raised_cosine ~beta:0.35 (Float.of_int k)))
    [ 1; 2; 3; -1; -2 ]

let test_raised_cosine_singularity () =
  (* t = 1/(2β) is the removable singularity *)
  let beta = 0.35 in
  let v = Dsp.Pam.raised_cosine ~beta (1.0 /. (2.0 *. beta)) in
  check bool_t "finite" true (Float.is_finite v)

let test_waveform_reconstructs_symbols () =
  let rng = Stats.Rng.create ~seed:21 in
  let syms = Dsp.Pam.symbols rng 64 in
  (* at integer symbol times the Nyquist pulse reproduces the symbol *)
  for k = 8 to 56 do
    check (float_t 1e-6)
      (Printf.sprintf "s(%d)" k)
      syms.(k)
      (Dsp.Pam.waveform_sample ~beta:0.35 syms (Float.of_int k))
  done

let test_symbol_errors_lag () =
  let sent = [| 1.0; -1.0; 1.0; 1.0; -1.0; 1.0 |] in
  let decided = [| 0.0; 1.0; -1.0; 1.0; 1.0; -1.0 |] in
  (* decided is sent delayed by 1 *)
  let e, t = Dsp.Pam.symbol_errors ~skip:1 ~lag:(-1) ~sent ~decided () in
  check int_t "no errors at lag -1" 0 e;
  check bool_t "counted" true (t > 0);
  check (float_t 1e-9) "best_ser finds it" 0.0
    (Dsp.Pam.best_ser ~skip:1 ~sent ~decided ())

(* --- Channel_model ----------------------------------------------------- *)

let test_isi_awgn_deterministic () =
  let mk () =
    let rng = Stats.Rng.create ~seed:33 in
    Dsp.Channel_model.isi_awgn ~rng ~n_symbols:100 ()
  in
  let s1, sent1 = mk () and s2, sent2 = mk () in
  check bool_t "same symbols" true (sent1 = sent2);
  for i = 0 to 99 do
    check (float_t 0.0) "same samples" (s1 i) (s2 i)
  done

let test_isi_awgn_peak_bounded () =
  let rng = Stats.Rng.create ~seed:34 in
  let s, _ =
    Dsp.Channel_model.isi_awgn ~taps:[| 0.15; 0.8; 0.12 |] ~noise_sigma:0.02
      ~rng ~n_symbols:2000 ()
  in
  let peak = Dsp.Channel_model.peak s ~n:2000 in
  check bool_t "within 1.5" true (peak < 1.5);
  check bool_t "nontrivial" true (peak > 0.5)

let test_timing_offset_pam_shape () =
  let rng = Stats.Rng.create ~seed:35 in
  let s, sent, n = Dsp.Channel_model.timing_offset_pam ~rng ~n_symbols:100 () in
  check int_t "2 samples per symbol" 200 n;
  check int_t "symbols" 100 (Array.length sent);
  check bool_t "bounded" true (Dsp.Channel_model.peak s ~n < 2.0)

let suite =
  ( "dsp-blocks",
    [
      Alcotest.test_case "fir impulse" `Quick test_fir_impulse_response;
      Alcotest.test_case "fir vs reference" `Quick test_fir_matches_reference;
      Alcotest.test_case "fir worst-case gain" `Quick
        test_fir_worst_case_gain;
      Alcotest.test_case "fir sfg range" `Quick
        test_fir_sfg_range_matches_gain;
      Alcotest.test_case "fir sfg simulation" `Quick
        test_fir_sfg_simulation_agree;
      Alcotest.test_case "biquad vs reference" `Quick
        test_biquad_matches_reference;
      Alcotest.test_case "biquad dc gain" `Quick test_biquad_resonator_dc_gain;
      Alcotest.test_case "biquad l1 gain" `Quick
        test_biquad_l1_gain_grows_with_r;
      Alcotest.test_case "biquad sfg explodes" `Quick
        test_biquad_sfg_explodes_near_instability;
      Alcotest.test_case "biquad sfg bounded" `Quick
        test_biquad_sfg_bounded_with_annotation;
      Alcotest.test_case "moving average reference" `Quick
        test_moving_average_reference;
      Alcotest.test_case "moving average accumulator" `Quick
        test_moving_average_accumulator_flagged;
      Alcotest.test_case "cordic gain" `Quick test_cordic_gain;
      Alcotest.test_case "cordic accuracy" `Quick
        test_cordic_rotation_accuracy;
      Alcotest.test_case "cordic angle bound" `Quick
        test_cordic_angle_error_bound;
      Alcotest.test_case "cordic bad iters" `Quick test_cordic_bad_iters;
      Alcotest.test_case "slicer decisions" `Quick test_slicer_decisions;
      Alcotest.test_case "slicer steered by fixed" `Quick
        test_slicer_steered_by_fixed;
      Alcotest.test_case "pam decide levels" `Quick test_pam_decide_levels;
      Alcotest.test_case "raised cosine nyquist" `Quick
        test_raised_cosine_nyquist;
      Alcotest.test_case "raised cosine singularity" `Quick
        test_raised_cosine_singularity;
      Alcotest.test_case "waveform reconstructs" `Quick
        test_waveform_reconstructs_symbols;
      Alcotest.test_case "symbol errors lag" `Quick test_symbol_errors_lag;
      Alcotest.test_case "isi awgn deterministic" `Quick
        test_isi_awgn_deterministic;
      Alcotest.test_case "isi awgn peak" `Quick test_isi_awgn_peak_bounded;
      Alcotest.test_case "timing offset pam" `Quick
        test_timing_offset_pam_shape;
    ] )
