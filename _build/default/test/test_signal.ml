(* Unit tests: Sim.Signal + Sim.Env — the monitored signal objects, the
   clock, and the refinement annotations. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-12

let test_comb_assign_immediate () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  s <-- cst 1.5;
  check float_t "visible immediately" 1.5 (Sim.Signal.peek_fx s)

let test_reg_assign_staged () =
  let env = Sim.Env.create () in
  let r = Sim.Signal.create_reg env "r" in
  r <-- cst 2.0;
  check float_t "not yet" 0.0 (Sim.Signal.peek_fx r);
  Sim.Env.tick env;
  check float_t "after tick" 2.0 (Sim.Signal.peek_fx r)

let test_reg_holds_without_write () =
  let env = Sim.Env.create () in
  let r = Sim.Signal.create_reg env "r" in
  r <-- cst 3.0;
  Sim.Env.tick env;
  Sim.Env.tick env;
  check float_t "holds" 3.0 (Sim.Signal.peek_fx r)

let test_reg_swap_semantics () =
  (* classic register test: simultaneous exchange *)
  let env = Sim.Env.create () in
  let a = Sim.Signal.create_reg env "a" in
  let b = Sim.Signal.create_reg env "b" in
  a <-- cst 1.0;
  b <-- cst 2.0;
  Sim.Env.tick env;
  a <-- !!b;
  b <-- !!a;
  Sim.Env.tick env;
  check float_t "a took b" 2.0 (Sim.Signal.peek_fx a);
  check float_t "b took old a" 1.0 (Sim.Signal.peek_fx b)

let test_quantize_on_assign () =
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "t" ~n:4 ~f:2 () in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  s <-- cst 0.6;
  check float_t "fx quantized" 0.5 (Sim.Signal.peek_fx s);
  check float_t "fl keeps reference" 0.6 (Sim.Signal.peek_fl s)

let test_stat_monitor_tracks_ideal () =
  let env = Sim.Env.create () in
  let dt =
    Fixpt.Dtype.make "t" ~n:4 ~f:2 ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  s <-- cst 5.0;
  (* value saturates to 1.75 but the monitor records the needed range *)
  check float_t "fx saturated" 1.75 (Sim.Signal.peek_fx s);
  (match Sim.Signal.stat_range s with
  | Some (_, hi) -> check float_t "monitor saw 5.0" 5.0 hi
  | None -> Alcotest.fail "no range")

let test_access_and_assign_counts () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  s <-- cst 1.0;
  ignore !!s;
  ignore !!s;
  check int_t "assigns" 1 (Sim.Signal.assignments s);
  check int_t "accesses" 2 (Sim.Signal.accesses s)

let test_prop_range_accumulates () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  s <-- Sim.Value.with_range (cst 1.0) (Interval.make 0.0 1.0);
  s <-- Sim.Value.with_range (cst (-1.0)) (Interval.make (-2.0) 0.0);
  check bool_t "joined" true
    (Sim.Signal.prop_range s = Some (-2.0, 1.0))

let test_explicit_range_overrides_read () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  s <-- Sim.Value.with_range (cst 0.5) (Interval.make (-100.0) 100.0);
  Sim.Signal.range s (-1.5) 1.5;
  check bool_t "read propagates the annotation" true
    (Interval.equal (Sim.Value.iv !!s) (Interval.make (-1.5) 1.5))

let test_typed_unassigned_reads_type_range () =
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "t" ~n:4 ~f:2 () in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  check bool_t "declared range" true
    (Interval.equal (Sim.Value.iv !!s) (Interval.make (-2.0) 1.75))

let test_saturating_type_clamps_prop () =
  let env = Sim.Env.create () in
  let dt =
    Fixpt.Dtype.make "t" ~n:4 ~f:2 ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  s <-- Sim.Value.with_range (cst 0.0) (Interval.make (-50.0) 50.0);
  check bool_t "prop clamped by saturation" true
    (Sim.Signal.prop_range s = Some (-2.0, 1.75))

let test_error_injection () =
  let env = Sim.Env.create ~seed:1 () in
  let s = Sim.Signal.create env "s" in
  Sim.Signal.error s 0.25;
  let run = Stats.Running.create () in
  for _ = 1 to 5000 do
    s <-- cst 1.0;
    Stats.Running.add run (Sim.Signal.peek_fl s -. Sim.Signal.peek_fx s)
  done;
  check bool_t "bounded by h" true (Stats.Running.max_abs run <= 0.25);
  check (Alcotest.float 0.01) "sigma h/sqrt3" (0.25 /. sqrt 3.0)
    (Stats.Running.stddev run);
  let errs = Stats.Err_stats.produced (Sim.Signal.err_stats s) in
  check bool_t "recorded as produced error" true
    (Stats.Running.count errs = 5000)

let test_consumed_vs_produced () =
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "t" ~n:4 ~f:2 () in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  (* incoming value carries consumed error 0.1; quantization adds more *)
  let incoming = { (cst 0.6) with Sim.Value.fl = 0.7 } in
  s <-- incoming;
  let e = Sim.Signal.err_stats s in
  check (Alcotest.float 1e-9) "consumed" 0.1
    (Stats.Running.max_abs (Stats.Err_stats.consumed e));
  check (Alcotest.float 1e-9) "produced = fl - quantized fx" 0.2
    (Stats.Running.max_abs (Stats.Err_stats.produced e))

let test_overflow_error_policy_raise () =
  let env = Sim.Env.create ~policy:Sim.Env.Raise () in
  let dt =
    Fixpt.Dtype.make "t" ~n:4 ~f:2 ~overflow:Fixpt.Overflow_mode.Error ()
  in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  check bool_t "raises" true
    (try
       s <-- cst 9.0;
       false
     with Sim.Env.Overflow _ -> true)

let test_overflow_counted () =
  let env = Sim.Env.create () in
  let dt =
    Fixpt.Dtype.make "t" ~n:4 ~f:2 ~overflow:Fixpt.Overflow_mode.Error ()
  in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  s <-- cst 9.0;
  s <-- cst 1.0;
  s <-- cst (-9.0);
  check int_t "two overflows" 2 (Sim.Signal.overflows s)

let test_grid_lsb () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  s <-- cst 1.0;
  check bool_t "1.0 -> 0" true (Sim.Signal.grid_lsb s = Some 0);
  s <-- cst 0.375;
  check bool_t "0.375 -> -3" true (Sim.Signal.grid_lsb s = Some (-3));
  s <-- cst 4.0;
  check bool_t "coarser value keeps finest" true
    (Sim.Signal.grid_lsb s = Some (-3))

let test_env_reset_preserves_annotations () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  Sim.Signal.range s (-1.0) 1.0;
  Sim.Signal.error s 0.1;
  s <-- cst 0.5;
  Sim.Env.reset env;
  check int_t "monitors cleared" 0 (Sim.Signal.assignments s);
  check bool_t "range kept" true (Sim.Signal.explicit_range s <> None);
  check bool_t "error kept" true (Sim.Signal.error_injected s = Some 0.1);
  check float_t "value cleared" 0.0 (Sim.Signal.peek_fx s)

let test_env_reset_hooks_rerun () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "coef" in
  Sim.Env.at_reset env (fun () -> Sim.Signal.init s 0.25);
  check float_t "ran immediately" 0.25 (Sim.Signal.peek_fx s);
  Sim.Env.reset env;
  check float_t "re-initialized" 0.25 (Sim.Signal.peek_fx s);
  check int_t "one init assignment" 1 (Sim.Signal.assignments s)

let test_env_find () =
  let env = Sim.Env.create () in
  let _a = Sim.Signal.create env "alpha" in
  check bool_t "found" true (Sim.Env.find env "alpha" <> None);
  check bool_t "missing" true (Sim.Env.find env "beta" = None)

let test_env_signal_order () =
  let env = Sim.Env.create () in
  let _a = Sim.Signal.create env "a" in
  let _b = Sim.Signal.create env "b" in
  check bool_t "declaration order" true
    (List.map Sim.Signal.name (Sim.Env.signals env) = [ "a"; "b" ])

let suite =
  ( "signal-env",
    [
      Alcotest.test_case "comb immediate" `Quick test_comb_assign_immediate;
      Alcotest.test_case "reg staged" `Quick test_reg_assign_staged;
      Alcotest.test_case "reg holds" `Quick test_reg_holds_without_write;
      Alcotest.test_case "reg swap" `Quick test_reg_swap_semantics;
      Alcotest.test_case "quantize on assign" `Quick test_quantize_on_assign;
      Alcotest.test_case "stat monitors ideal value" `Quick
        test_stat_monitor_tracks_ideal;
      Alcotest.test_case "counts" `Quick test_access_and_assign_counts;
      Alcotest.test_case "prop accumulates" `Quick
        test_prop_range_accumulates;
      Alcotest.test_case "explicit range overrides" `Quick
        test_explicit_range_overrides_read;
      Alcotest.test_case "typed unassigned reads type range" `Quick
        test_typed_unassigned_reads_type_range;
      Alcotest.test_case "saturating type clamps prop" `Quick
        test_saturating_type_clamps_prop;
      Alcotest.test_case "error injection" `Quick test_error_injection;
      Alcotest.test_case "consumed vs produced" `Quick
        test_consumed_vs_produced;
      Alcotest.test_case "overflow raise policy" `Quick
        test_overflow_error_policy_raise;
      Alcotest.test_case "overflow counted" `Quick test_overflow_counted;
      Alcotest.test_case "grid lsb" `Quick test_grid_lsb;
      Alcotest.test_case "reset preserves annotations" `Quick
        test_env_reset_preserves_annotations;
      Alcotest.test_case "reset hooks rerun" `Quick
        test_env_reset_hooks_rerun;
      Alcotest.test_case "env find" `Quick test_env_find;
      Alcotest.test_case "env order" `Quick test_env_signal_order;
    ] )
