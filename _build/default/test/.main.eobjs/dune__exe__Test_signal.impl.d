test/test_signal.ml: Alcotest Fixpt Fixrefine Interval List Sim Stats
