test/test_lms_fir.ml: Alcotest Array Dsp Fixpt Fixrefine Float Printf Sim Stats
