test/test_soak.ml: Alcotest Array Fixpt Fixrefine Interval List Printf QCheck2 QCheck_alcotest Refine Sfg Sim Stats
