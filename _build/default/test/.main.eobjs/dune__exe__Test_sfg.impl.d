test/test_sfg.ml: Alcotest Array Fixpt Fixrefine Float Interval List Printf QCheck2 QCheck_alcotest Result Sfg Stats String
