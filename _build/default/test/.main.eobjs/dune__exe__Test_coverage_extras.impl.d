test/test_coverage_extras.ml: Alcotest Dsp Filename Fixpt Fixrefine Float Interval List Option Refine Sfg Sim Stats String Sys Vhdl
