test/test_flow.ml: Alcotest Dsp Fixpt Fixrefine List Refine Sfg Sim Stats
