test/test_ddc.ml: Alcotest Array Dsp Fixpt Fixrefine Float List Printf Refine Sim Stats String
