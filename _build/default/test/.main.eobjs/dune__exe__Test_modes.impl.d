test/test_modes.ml: Alcotest Fixrefine Format List Overflow_mode Round_mode Sign_mode
