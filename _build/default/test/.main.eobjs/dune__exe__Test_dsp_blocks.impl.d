test/test_dsp_blocks.ml: Alcotest Array Dsp Fixrefine Float Interval List Printf Refine Sfg Sim Stats
