test/test_qformat.ml: Alcotest Fixrefine Float Option QCheck2 QCheck_alcotest Qformat Sign_mode
