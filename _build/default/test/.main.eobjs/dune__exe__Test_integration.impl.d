test/test_integration.ml: Alcotest Array Dsp Fixpt Fixrefine Float List Refine Sim Stats String Vhdl
