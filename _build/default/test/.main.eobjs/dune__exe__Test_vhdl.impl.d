test/test_vhdl.ml: Alcotest Dsp Fixpt Fixrefine Sfg String Vhdl
