test/test_misc.ml: Alcotest Array Dsp Fixpt Fixrefine Float Format Interval List Printf Refine Sim Stats String
