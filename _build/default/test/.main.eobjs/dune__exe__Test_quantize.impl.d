test/test_quantize.ml: Alcotest Dtype Fixrefine Float Overflow_mode QCheck2 QCheck_alcotest Qformat Quantize Round_mode Sign_mode
