test/test_cic_cordic.ml: Alcotest Array Dsp Fixpt Fixrefine Float List Printf Sim Stats
