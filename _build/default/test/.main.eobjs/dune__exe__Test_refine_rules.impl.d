test/test_refine_rules.ml: Alcotest Fixpt Fixrefine Float Format Interval List Option Refine Sim Stats String
