test/test_testbench.ml: Alcotest Array Dsp Fixpt Fixrefine Float List Printf Sim Stats String Vhdl
