test/test_stats.ml: Alcotest Err_stats Fixpt Fixrefine Float Hashtbl Histogram List QCheck2 QCheck_alcotest Rng Running Sqnr
