test/test_goertzel_agc.ml: Alcotest Array Dsp Fixpt Fixrefine Float List Printf Refine Sim Stats
