test/test_extract.ml: Alcotest Array Dsp Fixpt Fixrefine Interval List Printf Result Sfg Sim Stats String
