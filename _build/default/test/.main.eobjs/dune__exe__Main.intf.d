test/main.mli:
