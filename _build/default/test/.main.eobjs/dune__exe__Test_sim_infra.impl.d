test/test_sim_infra.ml: Alcotest Fixpt Fixrefine Float Sim String
