test/test_dsp_loops.ml: Alcotest Array Dsp Fixpt Fixrefine Float Interval List Printf Refine Result Sfg Sim Stats
