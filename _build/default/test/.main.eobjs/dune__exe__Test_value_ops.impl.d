test/test_value_ops.ml: Alcotest Fixpt Fixrefine Float Interval QCheck2 QCheck_alcotest Sim
