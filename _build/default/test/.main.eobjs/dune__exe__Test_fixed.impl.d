test/test_fixed.ml: Alcotest Dtype Fixed Fixrefine Fun Int64 List Overflow_mode QCheck2 QCheck_alcotest Qformat Quantize Sign_mode
