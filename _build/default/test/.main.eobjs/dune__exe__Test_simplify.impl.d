test/test_simplify.ml: Alcotest Array Dsp Fixrefine Interval List Printf QCheck2 QCheck_alcotest Result Sfg Sim Stats
