test/test_interval.ml: Alcotest Fixrefine Float Interval QCheck2 QCheck_alcotest
