test/test_fft.ml: Alcotest Array Dsp Fixrefine Float Fun List Printf QCheck2 QCheck_alcotest Refine Sim Stats
