(* Tests: Dsp.Ddc — the composed down-converter subsystem. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool

let run_ddc ?(fcw = 0.15625 (* 5/32, exact in binary *)) ?(rate = 4)
    ?(order = 2) input =
  let env = Sim.Env.create () in
  let ddc = Dsp.Ddc.create env ~fcw ~rate ~order () in
  let outs = ref [] in
  Array.iter
    (fun x ->
      (match Dsp.Ddc.step ddc (cst x) with
      | Some (i, q) -> outs := (Sim.Value.fx i, Sim.Value.fx q) :: !outs
      | None -> ());
      Sim.Env.tick env)
    input;
  (env, ddc, Array.of_list (List.rev !outs))

let test_tone_to_dc () =
  (* a tone exactly at the NCO frequency lands at DC with amplitude
     A/2 · R^order *)
  let fcw = 0.15625 and rate = 4 and order = 2 in
  let a = 0.8 in
  let input =
    Array.init 512 (fun n ->
        a *. cos (2.0 *. Float.pi *. fcw *. Float.of_int n))
  in
  let _, _, outs = run_ddc ~fcw ~rate ~order input in
  let skip = 16 in
  let n = Array.length outs - skip in
  let mean_i =
    Array.fold_left ( +. ) 0.0
      (Array.init n (fun k -> fst outs.(k + skip)))
    /. Float.of_int n
  in
  let expected = a /. 2.0 *. (Float.of_int rate ** Float.of_int order) in
  check (Alcotest.float 0.15) "I settles at A/2 * R^N" expected mean_i

let test_matches_reference () =
  let fcw = 0.15625 and rate = 4 and order = 2 in
  let rng = Stats.Rng.create ~seed:13 in
  let input =
    Array.init 256 (fun _ -> Stats.Rng.uniform rng ~lo:(-0.9) ~hi:0.9)
  in
  let _, _, outs = run_ddc ~fcw ~rate ~order input in
  let i_ref, q_ref = Dsp.Ddc.reference ~fcw ~rate ~order input in
  let gain = Float.of_int rate ** Float.of_int order in
  Array.iteri
    (fun k (i, q) ->
      (* CORDIC mixer vs exact rotation: ~1e-4 relative accuracy *)
      check bool_t
        (Printf.sprintf "I close %d" k)
        true
        (Float.abs (i -. i_ref.(k)) < 2e-3 *. gain);
      check bool_t
        (Printf.sprintf "Q close %d" k)
        true
        (Float.abs (q -. q_ref.(k)) < 2e-3 *. gain))
    outs

let test_image_rejection () =
  (* a tone far from the NCO frequency is attenuated by the CIC relative
     to the in-band tone *)
  let fcw = 0.15625 and rate = 8 and order = 3 in
  let power outs =
    Array.fold_left (fun a (i, q) -> a +. (i *. i) +. (q *. q)) 0.0 outs
    /. Float.of_int (Array.length outs)
  in
  let tone f =
    Array.init 1024 (fun n -> cos (2.0 *. Float.pi *. f *. Float.of_int n))
  in
  let _, _, inband = run_ddc ~fcw ~rate ~order (tone fcw) in
  let _, _, image = run_ddc ~fcw ~rate ~order (tone (fcw +. 0.125)) in
  let skip a = Array.sub a 16 (Array.length a - 16) in
  check bool_t "image attenuated > 20 dB" true
    (power (skip inband) /. power (skip image) > 100.0)

let test_phase_stays_modulo_one () =
  let env = Sim.Env.create () in
  let ddc = Dsp.Ddc.create env ~fcw:0.3 ~rate:4 ~order:2 () in
  for _ = 1 to 500 do
    ignore (Dsp.Ddc.step ddc (cst 0.5));
    Sim.Env.tick env;
    let p = Sim.Signal.peek_fx (Dsp.Ddc.phase ddc) in
    check bool_t "phase in [0,1)" true (p >= 0.0 && p < 1.0)
  done

let test_refines_with_flow () =
  (* the composed subsystem goes through the standard flow: CIC
     integrators come out saturated-or-wrap candidates (case b),
     everything else resolves *)
  let env = Sim.Env.create ~seed:7 () in
  let rng = Stats.Rng.create ~seed:31 in
  let stim =
    Array.init 2048 (fun n ->
        (0.7 *. cos (2.0 *. Float.pi *. 0.15625 *. Float.of_int n))
        +. (0.05 *. Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
  in
  let x_dtype = Fixpt.Dtype.make "T" ~n:10 ~f:8 () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let ddc = Dsp.Ddc.create env ~fcw:0.15625 ~rate:4 ~order:2 () in
  Sim.Signal.range (Dsp.Ddc.phase ddc) 0.0 1.0;
  let design =
    {
      Refine.Flow.env;
      reset = (fun () -> Sim.Env.reset env);
      run =
        (fun () ->
          Sim.Engine.run env ~cycles:2048 (fun c ->
              x <-- Sim.Value.of_float stim.(c);
              ignore (Dsp.Ddc.step ddc !!x)));
    }
  in
  let r = Refine.Flow.refine ~sqnr_signal:"ddc_i" design in
  (* the CIC integrators must be flagged as accumulator-like *)
  let integ_decisions =
    List.filter
      (fun (d : Refine.Decision.msb) ->
        String.length d.Refine.Decision.signal >= 7
        && String.sub d.Refine.Decision.signal 0 7 = "ddc_ci_"
        && String.contains d.Refine.Decision.signal 'i')
      r.Refine.Flow.msb_decisions
  in
  check bool_t "CIC integrators analyzed" true (integ_decisions <> []);
  check bool_t "flow produced types" true
    (List.length r.Refine.Flow.types > 20)

let suite =
  ( "ddc",
    [
      Alcotest.test_case "tone to dc" `Quick test_tone_to_dc;
      Alcotest.test_case "matches reference" `Quick test_matches_reference;
      Alcotest.test_case "image rejection" `Quick test_image_rejection;
      Alcotest.test_case "phase modulo one" `Quick test_phase_stays_modulo_one;
      Alcotest.test_case "refines with flow" `Slow test_refines_with_flow;
    ] )
