(* Unit tests: Refine.Msb_rules, Refine.Lsb_rules, Refine.Decision,
   Refine.Report — the §5 refinement rules in isolation. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* drive a signal with values and controlled propagated intervals *)
let driven env name samples ~iv =
  let s = Sim.Signal.create env name in
  List.iter
    (fun v -> s <-- Sim.Value.with_range (cst v) (Interval.make (fst iv) (snd iv)))
    samples;
  s

(* --- MSB rules ---------------------------------------------------------- *)

let test_case_a_agreement () =
  let env = Sim.Env.create () in
  let s = driven env "s" [ 0.5; -1.2; 0.9 ] ~iv:(-1.4, 1.4) in
  let d = Refine.Msb_rules.decide s in
  check bool_t "case a" true (d.Refine.Decision.case = Refine.Decision.Agree);
  check int_t "msb 1" 1 d.Refine.Decision.msb_pos;
  check bool_t "non-saturated" true
    (not (Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode))

let test_case_b_pessimistic_prop () =
  let env = Sim.Env.create () in
  (* stat |v| < 1 (msb 0) but propagation claims ±100 (msb 7): gap >= 4 *)
  let s = driven env "s" [ 0.5; -0.9 ] ~iv:(-100.0, 100.0) in
  let d = Refine.Msb_rules.decide s in
  check bool_t "case b" true
    (d.Refine.Decision.case = Refine.Decision.Prop_pessimistic);
  check bool_t "saturate" true
    (Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode);
  check int_t "msb from statistics" 0 d.Refine.Decision.msb_pos;
  check bool_t "guard range reported" true (d.Refine.Decision.guard <> None)

let test_case_c_tradeoff () =
  let env = Sim.Env.create () in
  (* stat msb 0, prop msb 2: a moderate gap *)
  let s = driven env "s" [ 0.5; -0.9 ] ~iv:(-3.5, 3.5) in
  let d = Refine.Msb_rules.decide s in
  check bool_t "case c" true (d.Refine.Decision.case = Refine.Decision.Trade_off);
  check int_t "takes propagation msb" 2 d.Refine.Decision.msb_pos

let test_case_c_prefer_saturation () =
  let env = Sim.Env.create () in
  let s = driven env "s" [ 0.5; -0.9 ] ~iv:(-3.5, 3.5) in
  let config =
    { Refine.Msb_rules.default_config with prefer_saturation_on_tradeoff = true }
  in
  let d = Refine.Msb_rules.decide ~config s in
  check int_t "keeps statistic msb" 0 d.Refine.Decision.msb_pos;
  check bool_t "saturates" true
    (Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode)

let test_explosion_forces_case_b () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  s <-- Sim.Value.with_range (cst 0.5) (Interval.make Float.neg_infinity Float.infinity);
  let d = Refine.Msb_rules.decide s in
  check bool_t "case b" true
    (d.Refine.Decision.case = Refine.Decision.Prop_pessimistic);
  check bool_t "no prop msb" true (d.Refine.Decision.prop_msb = None)

let test_explicit_range_decides_saturated () =
  (* Table 1 marks range()-annotated rows "(st)" *)
  let env = Sim.Env.create () in
  let s = driven env "x" [ 0.3 ] ~iv:(-0.5, 0.5) in
  Sim.Signal.range s (-1.5) 1.5;
  let d = Refine.Msb_rules.decide s in
  check bool_t "saturated" true
    (Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode);
  check int_t "msb of the annotation" 1 d.Refine.Decision.msb_pos

let test_guard_bits () =
  let env = Sim.Env.create () in
  let s = driven env "s" [ 0.9 ] ~iv:(-100.0, 100.0) in
  let config = { Refine.Msb_rules.default_config with guard_bits = 2 } in
  let d = Refine.Msb_rules.decide ~config s in
  check int_t "stat msb + guard" 2 d.Refine.Decision.msb_pos

let test_never_assigned_signal () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "unused" in
  let d = Refine.Msb_rules.decide s in
  check bool_t "default decision exists" true (d.Refine.Decision.msb_pos = 0)

let test_overhead_bits () =
  let mk signal stat prop =
    {
      Refine.Decision.signal;
      msb_pos = prop;
      mode = Fixpt.Overflow_mode.Error;
      case = Refine.Decision.Trade_off;
      stat_msb = Some stat;
      prop_msb = Some prop;
      guard = None;
    }
  in
  let overhead =
    Refine.Msb_rules.overhead_bits_per_signal [ mk "a" 0 1; mk "b" 0 0 ]
  in
  check (Alcotest.float 1e-12) "mean gap" 0.5 overhead

(* --- LSB rules ---------------------------------------------------------- *)

let noisy_signal env name ~sigma_scale =
  let s = Sim.Signal.create env name in
  let rng = Stats.Rng.create ~seed:5 in
  for _ = 1 to 4000 do
    let v = Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
    let err = Stats.Rng.uniform_sym rng sigma_scale in
    s <-- Sim.Value.with_range { (cst v) with Sim.Value.fl = v +. err }
            (Interval.make (-1.0) 1.0)
  done;
  s

let test_sigma_rule_position () =
  (* uniform error ±2^-6: σ = 2^-6/√3; k=1 ⇒ floor(log2 σ) = -7 or -8 *)
  let env = Sim.Env.create () in
  let s = noisy_signal env "s" ~sigma_scale:0.015625 in
  let d = Refine.Lsb_rules.decide s in
  (match d.Refine.Decision.lsb_pos with
  | Some p -> check bool_t "p in {-8,-7}" true (p = -8 || p = -7)
  | None -> Alcotest.fail "expected a position");
  check bool_t "sigma rule" true
    (d.Refine.Decision.origin = Refine.Decision.Sigma_rule)

let test_k_lsb_scales_position () =
  let env = Sim.Env.create () in
  let s = noisy_signal env "s" ~sigma_scale:0.015625 in
  let p k =
    let config = { Refine.Lsb_rules.default_config with k_lsb = k } in
    Option.get (Refine.Lsb_rules.decide ~config s).Refine.Decision.lsb_pos
  in
  check int_t "k=4 two bits coarser" (p 1.0 + 2) (p 4.0)

let test_exact_signal_grid () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "y" in
  for i = 0 to 99 do
    s <-- cst (if i mod 2 = 0 then 1.0 else -1.0)
  done;
  let d = Refine.Lsb_rules.decide s in
  check bool_t "exact" true (d.Refine.Decision.origin = Refine.Decision.Exact_grid);
  check bool_t "lsb 0" true (d.Refine.Decision.lsb_pos = Some 0)

let test_exact_grid_floor_caps () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "c" in
  s <-- cst 0.1;
  let d = Refine.Lsb_rules.decide s in
  check bool_t "capped at -24" true (d.Refine.Decision.lsb_pos = Some (-24))

let test_already_typed_reported () =
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "t" ~n:7 ~f:5 () in
  let s = Sim.Signal.create env ~dtype:dt "x" in
  s <-- cst 0.3;
  let d = Refine.Lsb_rules.decide s in
  check bool_t "typed origin" true
    (d.Refine.Decision.origin = Refine.Decision.Already_typed);
  check bool_t "reports the type's lsb" true (d.Refine.Decision.lsb_pos = Some (-5))

let test_divergence_detection () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "eta" in
  (* error comparable to the signal: meaningless statistics *)
  for i = 0 to 99 do
    let v = Float.of_int (i mod 3) *. 0.3 in
    s <-- { (cst v) with Sim.Value.fl = v +. 0.8 }
  done;
  check bool_t "diverged" true (Refine.Lsb_rules.diverged s);
  let d = Refine.Lsb_rules.decide s in
  check bool_t "no position" true (d.Refine.Decision.lsb_pos = None);
  check bool_t "flagged" true d.Refine.Decision.diverged

let test_overruled_signal_usable () =
  let env = Sim.Env.create ~seed:1 () in
  let s = Sim.Signal.create env "eta" in
  Sim.Signal.error s 0.015625;
  for i = 0 to 999 do
    s <-- cst (Float.of_int (i mod 5) *. 0.2)
  done;
  let d = Refine.Lsb_rules.decide s in
  check bool_t "overruled origin" true
    (d.Refine.Decision.origin = Refine.Decision.Overruled);
  check bool_t "position derived" true (d.Refine.Decision.lsb_pos <> None)

let test_floor_vs_round_recommendation () =
  let env = Sim.Env.create () in
  (* large noise: floor's bias is negligible -> floor recommended *)
  let s = noisy_signal env "s" ~sigma_scale:0.05 in
  let d = Refine.Lsb_rules.decide s in
  check bool_t "floor" true
    (Fixpt.Round_mode.equal d.Refine.Decision.round Fixpt.Round_mode.Floor)

let test_error_halfwidth_paper_example () =
  (* paper: LSB -5 ↔ error(0.0156) *)
  check (Alcotest.float 1e-4) "2^-6" 0.015625
    (Refine.Lsb_rules.error_halfwidth_of_lsb (-5))

(* --- Decision.to_dtype -------------------------------------------------- *)

let msb_d ?(mode = Fixpt.Overflow_mode.Error) msb =
  {
    Refine.Decision.signal = "s";
    msb_pos = msb;
    mode;
    case = Refine.Decision.Agree;
    stat_msb = Some msb;
    prop_msb = Some msb;
    guard = None;
  }

let lsb_d lsb =
  {
    Refine.Decision.signal = "s";
    lsb_pos = lsb;
    round = Fixpt.Round_mode.Round;
    origin = Refine.Decision.Sigma_rule;
    sigma = 0.001;
    mean = 0.0;
    max_abs = 0.002;
    diverged = false;
    loss = Stats.Err_stats.No_loss;
  }

let test_to_dtype_fuses () =
  match Refine.Decision.to_dtype ~msb:(msb_d 1) ~lsb:(lsb_d (Some (-6))) () with
  | Some dt ->
      check int_t "n" 8 (Fixpt.Dtype.n dt);
      check int_t "f" 6 (Fixpt.Dtype.f dt)
  | None -> Alcotest.fail "expected a type"

let test_to_dtype_missing_lsb () =
  check bool_t "no lsb, no type" true
    (Refine.Decision.to_dtype ~msb:(msb_d 1) ~lsb:(lsb_d None) () = None)

let test_to_dtype_inverted () =
  check bool_t "lsb above msb rejected" true
    (Refine.Decision.to_dtype ~msb:(msb_d (-8)) ~lsb:(lsb_d (Some 0)) () = None)

(* --- Report -------------------------------------------------------------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_report_msb_format () =
  let env = Sim.Env.create () in
  let s = driven env "sig1" [ 0.5; -0.3 ] ~iv:(-1.0, 1.0) in
  Sim.Signal.range s (-1.0) 1.0;
  let rows = Refine.Report.msb_table env in
  let text = Format.asprintf "%a" Refine.Report.pp_msb_table rows in
  check bool_t "header" true (contains "msb" text);
  check bool_t "signal row" true (contains "sig1" text);
  check bool_t "saturation marker" true (contains "(st)" text)

let test_report_lsb_format () =
  let env = Sim.Env.create () in
  let _ = noisy_signal env "n1" ~sigma_scale:0.01 in
  let text =
    Format.asprintf "%a" Refine.Report.pp_lsb_table (Refine.Report.lsb_table env)
  in
  check bool_t "header sigma" true (contains "sigma" text);
  check bool_t "row" true (contains "n1" text)

let test_report_summary () =
  let env = Sim.Env.create () in
  let _ = driven env "a" [ 0.5 ] ~iv:(-1.0, 1.0) in
  let msbs = Refine.Msb_rules.decide_all env in
  let lsbs = Refine.Lsb_rules.decide_all env in
  let s = Refine.Report.summary env msbs lsbs in
  check bool_t "mentions count" true (contains "1 signals" s)

let suite =
  ( "refine-rules",
    [
      Alcotest.test_case "case (a) agreement" `Quick test_case_a_agreement;
      Alcotest.test_case "case (b) pessimistic" `Quick
        test_case_b_pessimistic_prop;
      Alcotest.test_case "case (c) tradeoff" `Quick test_case_c_tradeoff;
      Alcotest.test_case "case (c) saturation pref" `Quick
        test_case_c_prefer_saturation;
      Alcotest.test_case "explosion forces (b)" `Quick
        test_explosion_forces_case_b;
      Alcotest.test_case "explicit range saturates" `Quick
        test_explicit_range_decides_saturated;
      Alcotest.test_case "guard bits" `Quick test_guard_bits;
      Alcotest.test_case "never assigned" `Quick test_never_assigned_signal;
      Alcotest.test_case "overhead bits" `Quick test_overhead_bits;
      Alcotest.test_case "sigma rule position" `Quick test_sigma_rule_position;
      Alcotest.test_case "k_lsb scaling" `Quick test_k_lsb_scales_position;
      Alcotest.test_case "exact grid" `Quick test_exact_signal_grid;
      Alcotest.test_case "exact grid floor" `Quick test_exact_grid_floor_caps;
      Alcotest.test_case "already typed" `Quick test_already_typed_reported;
      Alcotest.test_case "divergence detection" `Quick
        test_divergence_detection;
      Alcotest.test_case "overruled usable" `Quick test_overruled_signal_usable;
      Alcotest.test_case "floor recommendation" `Quick
        test_floor_vs_round_recommendation;
      Alcotest.test_case "error halfwidth" `Quick
        test_error_halfwidth_paper_example;
      Alcotest.test_case "to_dtype fuses" `Quick test_to_dtype_fuses;
      Alcotest.test_case "to_dtype missing lsb" `Quick
        test_to_dtype_missing_lsb;
      Alcotest.test_case "to_dtype inverted" `Quick test_to_dtype_inverted;
      Alcotest.test_case "report msb" `Quick test_report_msb_format;
      Alcotest.test_case "report lsb" `Quick test_report_lsb_format;
      Alcotest.test_case "report summary" `Quick test_report_summary;
    ] )
