(* Unit tests: Sig_array, Channel, Engine, Vcd — the rest of the design
   environment. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-12

(* --- Sig_array --------------------------------------------------------- *)

let test_array_names () =
  let env = Sim.Env.create () in
  let a = Sim.Sig_array.create env "d" 3 in
  check Alcotest.string "indexed name" "d[1]"
    (Sim.Signal.name (Sim.Sig_array.get a 1));
  check int_t "length" 3 (Sim.Sig_array.length a)

let test_array_bounds () =
  let env = Sim.Env.create () in
  let a = Sim.Sig_array.create env "d" 2 in
  check bool_t "oob raises" true
    (try
       ignore (Sim.Sig_array.get a 2);
       false
     with Invalid_argument _ -> true)

let test_array_init_values () =
  let env = Sim.Env.create () in
  let a = Sim.Sig_array.create env "c" 3 in
  Sim.Sig_array.init_values a [| 0.5; -0.25; 1.0 |];
  check float_t "c[0]" 0.5 (Sim.Signal.peek_fx (Sim.Sig_array.get a 0));
  check float_t "c[2]" 1.0 (Sim.Signal.peek_fx (Sim.Sig_array.get a 2))

let test_array_delay_line () =
  (* the paper's d[i] = d[i-1] shift with regarray semantics *)
  let env = Sim.Env.create () in
  let d = Sim.Sig_array.create_reg env "d" 3 in
  let shift v =
    Sim.Sig_array.get d 0 <-- cst v;
    for i = 2 downto 1 do
      Sim.Sig_array.get d i <-- !!(Sim.Sig_array.get d (i - 1))
    done;
    Sim.Env.tick env
  in
  shift 1.0;
  shift 2.0;
  shift 3.0;
  check float_t "d0 newest" 3.0 (Sim.Signal.peek_fx (Sim.Sig_array.get d 0));
  check float_t "d1" 2.0 (Sim.Signal.peek_fx (Sim.Sig_array.get d 1));
  check float_t "d2 oldest" 1.0 (Sim.Signal.peek_fx (Sim.Sig_array.get d 2))

let test_array_shift_order_independent () =
  (* with registers, shifting in ascending order gives the same result *)
  let env = Sim.Env.create () in
  let d = Sim.Sig_array.create_reg env "d" 3 in
  let shift_ascending v =
    for i = 2 downto 1 do
      Sim.Sig_array.get d i <-- !!(Sim.Sig_array.get d (i - 1))
    done;
    Sim.Sig_array.get d 0 <-- cst v;
    Sim.Env.tick env
  in
  shift_ascending 1.0;
  shift_ascending 2.0;
  check float_t "no fall-through" 1.0
    (Sim.Signal.peek_fx (Sim.Sig_array.get d 1))

let test_array_set_dtype_range () =
  let env = Sim.Env.create () in
  let a = Sim.Sig_array.create env "a" 2 in
  Sim.Sig_array.set_dtype a (Fixpt.Dtype.make "t" ~n:4 ~f:2 ());
  Sim.Sig_array.range a (-1.0) 1.0;
  Sim.Sig_array.iter
    (fun s ->
      check bool_t "typed" true (Sim.Signal.dtype s <> None);
      check bool_t "ranged" true (Sim.Signal.explicit_range s <> None))
    a

(* --- Channel ----------------------------------------------------------- *)

let test_channel_fifo () =
  let c = Sim.Channel.create "c" in
  Sim.Channel.put c 1.0;
  Sim.Channel.put c 2.0;
  check float_t "fifo order" 1.0 (Sim.Channel.get c);
  check float_t "fifo order 2" 2.0 (Sim.Channel.get c);
  check bool_t "then empty" true
    (try
       ignore (Sim.Channel.get c);
       false
     with Sim.Channel.Empty _ -> true)

let test_channel_producer () =
  let c = Sim.Channel.of_fun "src" (fun i -> Float.of_int i *. 0.5) in
  check float_t "f 0" 0.0 (Sim.Channel.get c);
  check float_t "f 1" 0.5 (Sim.Channel.get c);
  Sim.Channel.clear c;
  check float_t "restarts after clear" 0.0 (Sim.Channel.get c)

let test_channel_record () =
  let c = Sim.Channel.create ~record:true "sink" in
  Sim.Channel.put c 1.0;
  Sim.Channel.put c (-1.0);
  check bool_t "history" true (Sim.Channel.recorded c = [ 1.0; -1.0 ])

(* --- Engine ------------------------------------------------------------ *)

let test_engine_run_ticks () =
  let env = Sim.Env.create () in
  let r = Sim.Signal.create_reg env "acc" in
  Sim.Engine.run env ~cycles:5 (fun _ -> r <-- !!r +: cst 1.0);
  check float_t "accumulated" 5.0 (Sim.Signal.peek_fx r);
  check int_t "time advanced" 5 (Sim.Env.time env)

let test_engine_run_until () =
  let env = Sim.Env.create () in
  let r = Sim.Signal.create_reg env "acc" in
  let n =
    Sim.Engine.run_until env (fun _ ->
        r <-- !!r +: cst 1.0;
        Sim.Signal.peek_fx r < 2.5)
  in
  check int_t "stopped at 3" 4 n

let test_engine_processors () =
  let env = Sim.Env.create () in
  let a = Sim.Signal.create_reg env "a" in
  let b = Sim.Signal.create_reg env "b" in
  let eng = Sim.Engine.create env in
  Sim.Engine.add eng (Sim.Engine.processor "p1" (fun _ -> a <-- !!a +: cst 1.0));
  Sim.Engine.add eng (Sim.Engine.processor "p2" (fun _ -> b <-- !!a *: cst 2.0));
  Sim.Engine.run_processors eng ~cycles:3;
  check float_t "a" 3.0 (Sim.Signal.peek_fx a);
  (* p2 saw a's pre-tick value each cycle: b = 2 * a(t-1) = 4 *)
  check float_t "b one cycle behind" 4.0 (Sim.Signal.peek_fx b)

(* --- Vcd --------------------------------------------------------------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_vcd_structure () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "sig_a" in
  let vcd = Sim.Vcd.create () in
  Sim.Vcd.probe vcd s;
  Sim.Vcd.start vcd;
  s <-- cst 0.5;
  Sim.Vcd.sample vcd ~time:0;
  s <-- cst (-0.5);
  Sim.Vcd.sample vcd ~time:1;
  let text = Sim.Vcd.contents vcd in
  check bool_t "header" true (contains "$enddefinitions" text);
  check bool_t "var decl" true (contains "$var real 64 ! sig_a $end" text);
  check bool_t "time 0" true (contains "#0" text);
  check bool_t "value" true (contains "r0.5 !" text);
  check bool_t "time 1" true (contains "#1" text)

let test_vcd_monotone_time () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  let vcd = Sim.Vcd.create () in
  Sim.Vcd.probe vcd s;
  Sim.Vcd.start vcd;
  Sim.Vcd.sample vcd ~time:5;
  Sim.Vcd.sample vcd ~time:3 (* ignored *);
  check bool_t "no regress" true (not (contains "#3" (Sim.Vcd.contents vcd)))

let test_vcd_probe_after_start_rejected () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  let vcd = Sim.Vcd.create () in
  Sim.Vcd.probe vcd s;
  Sim.Vcd.start vcd;
  check bool_t "raises" true
    (try
       Sim.Vcd.probe vcd s;
       false
     with Invalid_argument _ -> true)

let suite =
  ( "sim-infra",
    [
      Alcotest.test_case "array names" `Quick test_array_names;
      Alcotest.test_case "array bounds" `Quick test_array_bounds;
      Alcotest.test_case "array init" `Quick test_array_init_values;
      Alcotest.test_case "array delay line" `Quick test_array_delay_line;
      Alcotest.test_case "array shift order" `Quick
        test_array_shift_order_independent;
      Alcotest.test_case "array dtype/range" `Quick
        test_array_set_dtype_range;
      Alcotest.test_case "channel fifo" `Quick test_channel_fifo;
      Alcotest.test_case "channel producer" `Quick test_channel_producer;
      Alcotest.test_case "channel record" `Quick test_channel_record;
      Alcotest.test_case "engine run" `Quick test_engine_run_ticks;
      Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
      Alcotest.test_case "engine processors" `Quick test_engine_processors;
      Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
      Alcotest.test_case "vcd monotone time" `Quick test_vcd_monotone_time;
      Alcotest.test_case "vcd probe guard" `Quick
        test_vcd_probe_after_start_rejected;
    ] )
