(* Tests: Dsp.Goertzel and Dsp.Agc. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps

(* --- Goertzel ----------------------------------------------------------- *)

let run_goertzel ~bin ~n input =
  let env = Sim.Env.create () in
  let g = Dsp.Goertzel.create env ~bin ~n () in
  let powers = ref [] in
  Array.iter
    (fun x ->
      (match Dsp.Goertzel.step g (cst x) with
      | Some p -> powers := Sim.Value.fx p :: !powers
      | None -> ());
      Sim.Env.tick env)
    input;
  (env, g, List.rev !powers)

let test_goertzel_matches_dft () =
  let n = 32 and bin = 5 in
  let rng = Stats.Rng.create ~seed:3 in
  let block = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let _, _, powers = run_goertzel ~bin ~n block in
  match powers with
  | [ p ] ->
      check (float_t 1e-6) "equals |DFT bin|^2"
        (Dsp.Goertzel.reference ~bin ~n block)
        p
  | _ -> Alcotest.fail "expected one block result"

let test_goertzel_detects_tone () =
  let n = 64 and bin = 8 in
  let tone k =
    Array.init n (fun j ->
        cos (2.0 *. Float.pi *. Float.of_int (k * j) /. Float.of_int n))
  in
  let _, _, p_in = run_goertzel ~bin ~n (tone bin) in
  let _, _, p_out = run_goertzel ~bin ~n (tone (bin + 7)) in
  match (p_in, p_out) with
  | [ pi ], [ po ] ->
      check bool_t "in-bin tone dominates" true (pi > 1000.0 *. Float.max po 1e-12)
  | _ -> Alcotest.fail "expected one block each"

let test_goertzel_multiple_blocks () =
  let n = 16 and bin = 3 in
  let input = Array.make 48 0.25 in
  let _, _, powers = run_goertzel ~bin ~n input in
  check Alcotest.int "three blocks" 3 (List.length powers);
  (* DC input, non-zero bin: small leakage, identical across blocks *)
  match powers with
  | a :: rest -> List.iter (fun p -> check (float_t 1e-9) "stable" a p) rest
  | [] -> Alcotest.fail "no blocks"

let test_goertzel_state_growth () =
  (* on an in-bin tone, the resonator state magnitude grows with the
     block — its range needs block-length-dependent MSBs *)
  let n = 64 and bin = 8 in
  let tone =
    Array.init n (fun j ->
        cos (2.0 *. Float.pi *. Float.of_int (bin * j) /. Float.of_int n))
  in
  let env, g, _ = run_goertzel ~bin ~n tone in
  ignore env;
  let s1 = List.hd (Dsp.Goertzel.state_signals g) in
  match Sim.Signal.stat_range s1 with
  | Some (lo, hi) ->
      check bool_t "state >> input" true (Float.max (-.lo) hi > 5.0)
  | None -> Alcotest.fail "no range"

(* --- AGC ------------------------------------------------------------------ *)

let test_agc_matches_reference () =
  let env = Sim.Env.create () in
  let agc = Dsp.Agc.create env () in
  let rng = Stats.Rng.create ~seed:5 in
  let input = Array.init 200 (fun _ -> 0.3 *. Stats.Rng.pam2 rng) in
  let expected = Dsp.Agc.reference input in
  let i = ref 0 in
  Sim.Engine.run env ~cycles:200 (fun _ ->
      let y = Dsp.Agc.step agc (cst input.(!i)) in
      check (float_t 1e-9) (Printf.sprintf "y %d" !i) expected.(!i)
        (Sim.Value.fx y);
      incr i)

let test_agc_normalizes_level () =
  List.iter
    (fun amplitude ->
      let env = Sim.Env.create () in
      let agc = Dsp.Agc.create env ~target:1.0 () in
      let rng = Stats.Rng.create ~seed:9 in
      Sim.Engine.run env ~cycles:2000 (fun _ ->
          ignore (Dsp.Agc.step agc (cst (amplitude *. Stats.Rng.pam2 rng))));
      (* gain settles near target / E|x| = 1 / amplitude *)
      check (Alcotest.float 0.1)
        (Printf.sprintf "gain at A=%g" amplitude)
        (1.0 /. amplitude)
        (Sim.Signal.peek_fx (Dsp.Agc.gain agc)))
    [ 0.25; 0.5; 2.0 ]

let test_agc_gain_needs_range_annotation () =
  (* unannotated, the gain register's propagated range explodes — the
     designer's gain clamp is mandatory; with it, the range analysis
     closes *)
  let env = Sim.Env.create () in
  let agc = Dsp.Agc.create env () in
  let rng = Stats.Rng.create ~seed:11 in
  Sim.Engine.run env ~cycles:1500 (fun _ ->
      ignore (Dsp.Agc.step agc (cst (0.5 *. Stats.Rng.pam2 rng))));
  (* the propagated range grows without bound (geometrically): rule (b)
     flags the accumulator long before the hard explosion threshold *)
  let d0 = Refine.Msb_rules.decide (Dsp.Agc.gain agc) in
  check bool_t "rule (b) on the unannotated gain" true
    (d0.Refine.Decision.case = Refine.Decision.Prop_pessimistic);
  Sim.Signal.range (Dsp.Agc.gain agc) 0.0 8.0;
  Sim.Env.reset env;
  let rng2 = Stats.Rng.create ~seed:11 in
  Sim.Engine.run env ~cycles:1500 (fun _ ->
      ignore (Dsp.Agc.step agc (cst (0.5 *. Stats.Rng.pam2 rng2))));
  let d = Refine.Msb_rules.decide (Dsp.Agc.gain agc) in
  check bool_t "decided saturated at the clamp" true
    (Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode)

let suite =
  ( "goertzel-agc",
    [
      Alcotest.test_case "goertzel vs dft" `Quick test_goertzel_matches_dft;
      Alcotest.test_case "goertzel detects tone" `Quick
        test_goertzel_detects_tone;
      Alcotest.test_case "goertzel blocks" `Quick test_goertzel_multiple_blocks;
      Alcotest.test_case "goertzel state growth" `Quick
        test_goertzel_state_growth;
      Alcotest.test_case "agc vs reference" `Quick test_agc_matches_reference;
      Alcotest.test_case "agc normalizes" `Quick test_agc_normalizes_level;
      Alcotest.test_case "agc gain range" `Quick
        test_agc_gain_needs_range_annotation;
    ] )
