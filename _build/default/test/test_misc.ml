(* Cross-validation and edge-case coverage that doesn't fit a single
   module suite. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

(* --- the big cross-check: float-based simulation == bit-true int64 ----- *)

let test_sim_matches_bit_true_fir () =
  (* a fully quantized FIR simulated with the float-based environment
     must agree bit-for-bit with the same filter computed in exact
     scaled-int64 arithmetic *)
  let coef_dt = Fixpt.Dtype.make "C" ~n:10 ~f:8 () in
  let data_dt =
    Fixpt.Dtype.make "D" ~n:12 ~f:8 ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let coefs = [| 0.1015625; 0.25; 0.30078125; 0.25; 0.1015625 |] in
  let rng = Stats.Rng.create ~seed:77 in
  let samples =
    Array.init 200 (fun _ ->
        Fixpt.Quantize.cast data_dt (Stats.Rng.uniform rng ~lo:(-1.5) ~hi:1.5))
  in
  (* 1: simulation-environment run *)
  let env = Sim.Env.create () in
  let fir =
    Dsp.Fir.create env ~coef_dtype:coef_dt ~delay_dtype:data_dt
      ~acc_dtype:data_dt ~coefs ()
  in
  let sim_out = Array.make 200 0.0 in
  let i = ref 0 in
  Sim.Engine.run env ~cycles:200 (fun _ ->
      sim_out.(!i) <- Sim.Value.fx (Dsp.Fir.step fir (cst samples.(!i)));
      incr i);
  (* 2: bit-true recomputation with Fixed (mirroring Fir.step's
     structure: registered delay line, accumulate then resize into the
     accumulator type at every v[i] assignment) *)
  let fx v = fst (Fixpt.Fixed.of_float data_dt v) in
  let cfix = Array.map (fun c -> fst (Fixpt.Fixed.of_float coef_dt c)) coefs in
  let line = Array.make 5 (Fixpt.Fixed.zero (Fixpt.Dtype.fmt data_dt)) in
  let bit_out = Array.make 200 0.0 in
  for t = 0 to 199 do
    (* v chain on the *pre-shift* delay line (regs read old values) *)
    let acc = ref (Fixpt.Fixed.zero (Fixpt.Dtype.fmt data_dt)) in
    for j = 0 to 4 do
      let product = Fixpt.Fixed.mul line.(j) cfix.(j) in
      let wide = Fixpt.Fixed.add !acc product in
      acc := fst (Fixpt.Fixed.resize data_dt wide)
    done;
    bit_out.(t) <- Fixpt.Fixed.to_float !acc;
    (* shift after compute, like the registered semantics *)
    for j = 4 downto 1 do
      line.(j) <- line.(j - 1)
    done;
    line.(0) <- fx samples.(t)
  done;
  Array.iteri
    (fun t v ->
      check (float_t 0.0) (Printf.sprintf "bit-exact t=%d" t) bit_out.(t) v)
    sim_out

(* --- misc edges --------------------------------------------------------- *)

let test_env_overflow_exception_fields () =
  let env = Sim.Env.create ~policy:Sim.Env.Raise () in
  let dt =
    Fixpt.Dtype.make "t" ~n:4 ~f:2 ~overflow:Fixpt.Overflow_mode.Error ()
  in
  let s = Sim.Signal.create env ~dtype:dt "boom" in
  (try s <-- cst 7.0 with
  | Sim.Env.Overflow { signal; value; time } ->
      check Alcotest.string "signal" "boom" signal;
      check bool_t "value" true (value > 1.75);
      check int_t "time" 0 time)

let test_dtype_with_msb_lsb () =
  let dt = Fixpt.Dtype.make "t" ~n:8 ~f:6 () in
  let wider = Fixpt.Dtype.with_msb dt 4 in
  check int_t "msb moved" 4 (Fixpt.Dtype.msb_pos wider);
  check int_t "lsb kept" (-6) (Fixpt.Dtype.lsb_pos wider);
  let finer = Fixpt.Dtype.with_lsb dt (-10) in
  check int_t "lsb moved" (-10) (Fixpt.Dtype.lsb_pos finer);
  check int_t "msb kept" 1 (Fixpt.Dtype.msb_pos finer)

let test_dtype_same_behaviour () =
  let a = Fixpt.Dtype.make "a" ~n:8 ~f:6 () in
  let b = Fixpt.Dtype.make "b" ~n:8 ~f:6 () in
  check bool_t "names differ but behaviour same" true
    (Fixpt.Dtype.same_behaviour a b && not (Fixpt.Dtype.equal a b))

let test_engine_run_until_max () =
  let env = Sim.Env.create () in
  let n = Sim.Engine.run_until ~max:10 env (fun _ -> true) in
  check int_t "capped" 10 n

let test_histogram_coverage_full () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  for i = 0 to 99 do
    Stats.Histogram.add h (Float.of_int i /. 100.0)
  done;
  (match Stats.Histogram.coverage_range h ~coverage:1.0 with
  | Some (lo, hi) ->
      check (float_t 1e-9) "lo" 0.0 lo;
      check (float_t 1e-9) "hi" 1.0 hi
  | None -> Alcotest.fail "expected full range");
  check bool_t "bad coverage rejected" true
    (try
       ignore (Stats.Histogram.coverage_range h ~coverage:1.5);
       false
     with Invalid_argument _ -> true)

let test_interval_pp_and_value_pp () =
  check Alcotest.string "interval" "[-1, 2]"
    (Interval.to_string (Interval.make (-1.0) 2.0));
  let v = Sim.Value.const 0.5 in
  check bool_t "value pp mentions fx" true
    (let s = Format.asprintf "%a" Sim.Value.pp v in
     String.length s > 0 && String.sub s 0 4 = "{fx=")

let test_channel_empty_exception () =
  let c = Sim.Channel.create "empty_chan" in
  (try ignore (Sim.Channel.get c) with
  | Sim.Channel.Empty name -> check Alcotest.string "name" "empty_chan" name)

let test_flow_determinism () =
  (* same seeds, same decisions — the reproducibility EXPERIMENTS.md
     relies on *)
  let run () =
    let env = Sim.Env.create ~seed:11 () in
    let rng = Stats.Rng.create ~seed:2024 in
    let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:1000 () in
    let input = Sim.Channel.of_fun "rx" stimulus in
    let output = Sim.Channel.create "y" in
    let x_dtype = Fixpt.Dtype.make "T" ~n:7 ~f:5 () in
    let eq = Dsp.Lms_equalizer.create env ~x_dtype ~input ~output () in
    Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
    let design =
      {
        Refine.Flow.env;
        reset =
          (fun () ->
            Sim.Env.reset env;
            Sim.Channel.clear input;
            Sim.Channel.clear output);
        run = (fun () -> Dsp.Lms_equalizer.run eq ~cycles:1000);
      }
    in
    let r = Refine.Flow.refine design in
    List.map (fun (n, dt) -> (n, Fixpt.Dtype.to_string dt)) r.Refine.Flow.types
  in
  check bool_t "identical derived types" true (run () = run ())

let test_qformat_unsigned_negative_rejected () =
  check bool_t "raises" true
    (try
       ignore
         (Fixpt.Qformat.required_msb Fixpt.Sign_mode.Us ~vmin:(-1.0) ~vmax:1.0);
       false
     with Invalid_argument _ -> true)

let test_sqnr_neg_infinity () =
  let t = Stats.Sqnr.create () in
  Stats.Sqnr.add t ~reference:0.0 ~actual:0.5;
  check bool_t "noise without signal" true (Stats.Sqnr.db t = Float.neg_infinity)

let suite =
  ( "misc",
    [
      Alcotest.test_case "sim matches bit-true FIR" `Quick
        test_sim_matches_bit_true_fir;
      Alcotest.test_case "overflow exception fields" `Quick
        test_env_overflow_exception_fields;
      Alcotest.test_case "dtype with_msb/with_lsb" `Quick
        test_dtype_with_msb_lsb;
      Alcotest.test_case "dtype same_behaviour" `Quick
        test_dtype_same_behaviour;
      Alcotest.test_case "run_until max" `Quick test_engine_run_until_max;
      Alcotest.test_case "histogram coverage full" `Quick
        test_histogram_coverage_full;
      Alcotest.test_case "pp functions" `Quick test_interval_pp_and_value_pp;
      Alcotest.test_case "channel empty" `Quick test_channel_empty_exception;
      Alcotest.test_case "flow determinism" `Slow test_flow_determinism;
      Alcotest.test_case "unsigned negative msb" `Quick
        test_qformat_unsigned_negative_rejected;
      Alcotest.test_case "sqnr -inf" `Quick test_sqnr_neg_infinity;
    ] )
