(* Tests: Dsp.Cic (wrap-around arithmetic) and Cordic vectoring mode. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps

(* --- CIC ---------------------------------------------------------------- *)

let run_cic ?(order = 3) ?(rate = 4) ?dtype input =
  let env = Sim.Env.create () in
  let cic = Dsp.Cic.create env ~order ~rate () in
  (match dtype with
  | Some dt ->
      List.iter (fun s -> Sim.Signal.set_dtype s dt) (Dsp.Cic.integrators cic)
  | None -> ());
  let outs = ref [] in
  Array.iter
    (fun x ->
      (match Dsp.Cic.step cic (cst x) with
      | Some v -> outs := Sim.Value.fx v :: !outs
      | None -> ());
      Sim.Env.tick env)
    input;
  (env, cic, Array.of_list (List.rev !outs))

let test_cic_matches_reference () =
  let rng = Stats.Rng.create ~seed:3 in
  let input = Array.init 64 (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let expected = Dsp.Cic.reference ~order:3 ~rate:4 input in
  let _, _, outs = run_cic input in
  check Alcotest.int "output count" (Array.length expected) (Array.length outs);
  Array.iteri
    (fun i v -> check (float_t 1e-9) (Printf.sprintf "out %d" i) expected.(i) v)
    outs

let test_cic_dc_gain () =
  let cic_gain = Dsp.Cic.gain in
  let env = Sim.Env.create () in
  let c = Dsp.Cic.create env ~order:3 ~rate:4 () in
  check (float_t 1e-9) "R^N" 64.0 (cic_gain c);
  let input = Array.make 200 1.0 in
  let _, _, outs = run_cic ~order:3 ~rate:4 input in
  (* steady state reaches the DC gain *)
  check (float_t 1e-9) "steady state" 64.0 outs.(Array.length outs - 1)

let test_cic_hogenauer_bits () =
  let env = Sim.Env.create () in
  let c = Dsp.Cic.create env ~order:3 ~rate:4 () in
  (* 3·log2(4) + 8 = 14 *)
  check Alcotest.int "width" 14 (Dsp.Cic.hogenauer_bits c ~input_bits:8)

let test_cic_wraparound_exact () =
  (* integrators in wrap mode at the Hogenauer width: outputs remain
     exact even though every integrator overflows repeatedly *)
  let order = 2 and rate = 4 in
  let input_bits = 6 in
  let rng = Stats.Rng.create ~seed:9 in
  let in_dt = Fixpt.Dtype.make "in" ~n:input_bits ~f:(input_bits - 2) () in
  let input =
    Array.init 400 (fun _ ->
        Fixpt.Quantize.cast in_dt (Stats.Rng.uniform rng ~lo:0.0 ~hi:0.9))
  in
  let env = Sim.Env.create () in
  let cic = Dsp.Cic.create env ~order ~rate () in
  let bits = Dsp.Cic.hogenauer_bits cic ~input_bits in
  let reg_dt =
    Fixpt.Dtype.make "reg" ~n:bits ~f:(input_bits - 2)
      ~overflow:Fixpt.Overflow_mode.Wrap ~round:Fixpt.Round_mode.Floor ()
  in
  List.iter (fun s -> Sim.Signal.set_dtype s reg_dt) (Dsp.Cic.integrators cic);
  let outs = ref [] in
  Array.iter
    (fun x ->
      (match Dsp.Cic.step cic (cst x) with
      | Some v -> outs := Sim.Value.fx v :: !outs
      | None -> ());
      Sim.Env.tick env)
    input;
  let outs = Array.of_list (List.rev !outs) in
  let expected = Dsp.Cic.reference ~order ~rate input in
  (* integrators overflowed (wrapped) many times... *)
  let wrapped =
    List.fold_left (fun a s -> a + Sim.Signal.overflows s) 0
      (Dsp.Cic.integrators cic)
  in
  check bool_t "integrators wrapped" true (wrapped > 0);
  (* ...and yet the comb outputs are bit-exact: wrap at sufficient width
     — never saturate a CIC integrator (comparing the combed output
     modulo the register span) *)
  let span =
    2.0 ** Float.of_int bits *. Fixpt.Dtype.step reg_dt
  in
  Array.iteri
    (fun i v ->
      let diff = Float.rem (expected.(i) -. v) span in
      let diff = if diff > span /. 2.0 then diff -. span else diff in
      let diff = if diff < -.span /. 2.0 then diff +. span else diff in
      check (float_t 1e-9) (Printf.sprintf "exact out %d" i) 0.0 diff)
    outs

let test_cic_integrator_range_explodes () =
  (* the refinement's view of an untyped CIC: integrator statistic range
     grows with the run and propagation explodes — the one structure
     where the right designer answer is wrap, not saturation *)
  let input = Array.make 400 0.5 in
  let env, cic, _ = run_cic ~order:2 input in
  ignore env;
  List.iter
    (fun s ->
      check bool_t
        (Sim.Signal.name s ^ " prop unbounded or huge")
        true
        (match Sim.Signal.prop_range s with
        | Some (_, hi) -> hi > 10.0
        | None -> false))
    (Dsp.Cic.integrators cic)

(* --- Cordic vectoring ----------------------------------------------------- *)

let test_vectorize_magnitude_angle () =
  let env = Sim.Env.create () in
  let iters = 16 in
  let c = Dsp.Cordic.create env ~iters () in
  List.iter
    (fun (x, y) ->
      let mag, ang = Dsp.Cordic.vectorize c ~x:(cst x) ~y:(cst y) in
      let rmag, rang = Dsp.Cordic.vectorize_reference ~iters ~x ~y in
      check (float_t 1e-3) "magnitude" rmag (Sim.Value.fx mag);
      check (float_t 1e-3) "angle" rang (Sim.Value.fx ang);
      Sim.Env.tick env)
    [ (1.0, 0.0); (0.5, 0.5); (0.8, -0.6); (0.3, 0.95) ]

let test_vectorize_drives_y_to_zero () =
  let env = Sim.Env.create () in
  let iters = 14 in
  let c = Dsp.Cordic.create env ~iters () in
  let _ = Dsp.Cordic.vectorize c ~x:(cst 0.7) ~y:(cst 0.4) in
  let _, ylast, _ = Dsp.Cordic.stage_signals c iters in
  check bool_t "y residual small" true
    (Float.abs (Sim.Signal.peek_fx ylast) < 1e-3)

let test_vectorize_rotation_roundtrip () =
  (* vectorize then rotate back by -angle recovers (K²·mag, 0) *)
  let env = Sim.Env.create () in
  let iters = 20 in
  let c = Dsp.Cordic.create env ~iters () in
  let x = 0.6 and y = -0.35 in
  let mag, ang = Dsp.Cordic.vectorize c ~x:(cst x) ~y:(cst y) in
  Sim.Env.tick env;
  let c2 = Dsp.Cordic.create env ~prefix:"cor2_" ~iters () in
  let xr, yr = Dsp.Cordic.rotate c2 ~x:mag ~y:(cst 0.0) ~z:ang in
  let k = Dsp.Cordic.gain iters in
  check (float_t 1e-3) "x recovered" (k *. k *. x) (Sim.Value.fx xr);
  check (float_t 1e-3) "y recovered" (k *. k *. y) (Sim.Value.fx yr)

let suite =
  ( "cic-cordic",
    [
      Alcotest.test_case "cic vs reference" `Quick test_cic_matches_reference;
      Alcotest.test_case "cic dc gain" `Quick test_cic_dc_gain;
      Alcotest.test_case "cic hogenauer bits" `Quick test_cic_hogenauer_bits;
      Alcotest.test_case "cic wraparound exact" `Quick
        test_cic_wraparound_exact;
      Alcotest.test_case "cic integrator ranges" `Quick
        test_cic_integrator_range_explodes;
      Alcotest.test_case "vectorize mag/angle" `Quick
        test_vectorize_magnitude_angle;
      Alcotest.test_case "vectorize y->0" `Quick test_vectorize_drives_y_to_zero;
      Alcotest.test_case "vectorize roundtrip" `Quick
        test_vectorize_rotation_roundtrip;
    ] )
