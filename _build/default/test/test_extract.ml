(* Tests: Sim.Record / Sim.Extract — automatic signal-flowgraph
   extraction from an executing design (§4.1 "Analytical"). *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-9

let test_extract_feedforward_expression () =
  let env = Sim.Env.create () in
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let y = Sim.Signal.create env "y" in
  let step () =
    x <-- Sim.Value.of_float 0.5;
    y <-- (!!x *: cst 2.0) +: cst 1.0
  in
  let _, ranges = Sim.Extract.analyze env ~step () in
  match Sfg.Range_analysis.range_of ranges "y" with
  | Some iv ->
      check float_t "lo" (-1.0) (Interval.lo iv);
      check float_t "hi" 3.0 (Interval.hi iv)
  | None -> Alcotest.fail "y not in extracted graph"

let test_extract_register_feedback () =
  let env = Sim.Env.create () in
  let acc = Sim.Signal.create_reg env "acc" in
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let step () =
    x <-- Sim.Value.of_float 0.1;
    acc <-- !!acc +: !!x
  in
  let _, ranges = Sim.Extract.analyze env ~step () in
  check bool_t "accumulator explodes analytically" true
    (List.mem "acc" ranges.Sfg.Range_analysis.exploded)

let test_extract_explicit_range_bounds_loop () =
  let env = Sim.Env.create () in
  let acc = Sim.Signal.create_reg env "acc" in
  Sim.Signal.range acc (-4.0) 4.0;
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let step () =
    x <-- Sim.Value.of_float 0.1;
    acc <-- !!acc +: !!x
  in
  let _, ranges = Sim.Extract.analyze env ~step () in
  check bool_t "bounded" true (ranges.Sfg.Range_analysis.exploded = [])

let test_extract_dtype_becomes_quantizer () =
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "T" ~n:8 ~f:6 () in
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let q = Sim.Signal.create env ~dtype:dt "q" in
  let step () =
    x <-- Sim.Value.of_float 0.5;
    q <-- !!x
  in
  let g = Sim.Extract.graph env ~step () in
  let has_quantizer =
    List.exists
      (fun (n : Sfg.Node.t) ->
        match n.Sfg.Node.op with Sfg.Node.Quantize _ -> true | _ -> false)
      (Sfg.Graph.nodes g)
  in
  check bool_t "quantizer node present" true has_quantizer;
  (* and the noise analysis sees its q^2/12 *)
  let ranges = Sfg.Range_analysis.run g in
  let nz = Sfg.Noise_analysis.run g ~ranges in
  match Sfg.Noise_analysis.sigma_of nz "q" with
  | Some s ->
      check (Alcotest.float 1e-12) "quantizer sigma"
        (Fixpt.Dtype.step dt /. sqrt 12.0)
        s
  | None -> Alcotest.fail "no sigma for q"

let test_extract_constants_from_init () =
  let env = Sim.Env.create () in
  let c = Sim.Signal.create env "c" in
  Sim.Signal.init c 0.25;
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let y = Sim.Signal.create env "y" in
  let step () =
    x <-- Sim.Value.of_float 0.5;
    y <-- (!!x *: !!c)
  in
  let _, ranges = Sim.Extract.analyze env ~step () in
  match Sfg.Range_analysis.range_of ranges "y" with
  | Some iv -> check float_t "scaled by the constant" 0.25 (Interval.hi iv)
  | None -> Alcotest.fail "no y"

let test_extract_equalizer_matches_handbuilt () =
  (* the headline: the extracted graph analyzes identically to the
     hand-written Lms_equalizer.to_sfg *)
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:2024 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:500 () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "y" in
  let eq = Dsp.Lms_equalizer.create env ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  Dsp.Lms_equalizer.run eq ~cycles:100;
  (* unannotated: the same feedback signals explode *)
  let _, r1 =
    Sim.Extract.analyze env ~step:(fun () -> Dsp.Lms_equalizer.step eq) ()
  in
  check bool_t "b explodes" true (List.mem "b" r1.Sfg.Range_analysis.exploded);
  check bool_t "w explodes" true (List.mem "w" r1.Sfg.Range_analysis.exploded);
  (* annotated: bounded, and v[3]'s range equals the hand-built graph's *)
  Sim.Signal.range (Dsp.Lms_equalizer.b eq) (-0.2) 0.2;
  let _, r2 =
    Sim.Extract.analyze env ~step:(fun () -> Dsp.Lms_equalizer.step eq) ()
  in
  check bool_t "bounded" true (r2.Sfg.Range_analysis.exploded = []);
  let hand = Sfg.Range_analysis.run (Dsp.Lms_equalizer.to_sfg ~b_range:(-0.2, 0.2) ()) in
  List.iter
    (fun name ->
      match
        (Sfg.Range_analysis.range_of r2 name, Sfg.Range_analysis.range_of hand name)
      with
      | Some a, Some b ->
          check float_t (name ^ " lo") (Interval.lo b) (Interval.lo a);
          check float_t (name ^ " hi") (Interval.hi b) (Interval.hi a)
      | _ -> Alcotest.fail ("missing " ^ name))
    [ "v[1]"; "v[2]"; "v[3]"; "w"; "y" ]

let test_extract_never_written_register_holds () =
  let env = Sim.Env.create () in
  let r = Sim.Signal.create_reg env "hold" in
  let y = Sim.Signal.create env "y" in
  let step () = y <-- !!r +: cst 1.0 in
  let g = Sim.Extract.graph env ~step () in
  check bool_t "graph valid (delay sealed)" true
    (Result.is_ok (Sfg.Graph.validate g));
  let ranges = Sfg.Range_analysis.run g in
  check bool_t "hold register stays at init" true
    (Sfg.Range_analysis.range_of ranges "hold" = Some (Interval.of_point 0.0))

let test_extract_graph_executes_like_design () =
  (* cross-check: interpret the extracted graph and compare with the
     simulation's own output on the same stimulus *)
  let env = Sim.Env.create () in
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let fir = Dsp.Fir.create env ~coefs:[| 0.5; 0.25 |] () in
  let out = Sim.Signal.create env "out" in
  let samples = [| 0.1; -0.4; 0.8; 0.3; -0.9 |] in
  let idx = ref 0 in
  let step () =
    x <-- Sim.Value.of_float samples.(!idx mod 5);
    out <-- Dsp.Fir.step fir !!x;
    incr idx
  in
  (* extract after a couple of cycles *)
  Sim.Engine.run env ~cycles:2 (fun _ -> step ());
  let g = Sim.Extract.graph env ~step () in
  (* fresh interpretation of the extracted graph on the full stimulus *)
  let traces =
    Sfg.Graph.simulate g ~steps:5 ~inputs:(fun name i ->
        if String.length name >= 4 && String.sub name 0 4 = "x_in" then
          samples.(i)
        else 0.0)
  in
  let sim_out = List.assoc "out" traces in
  let expected = Dsp.Fir.reference ~coefs:[| 0.5; 0.25 |] samples in
  (* one-cycle register latency, as in the design *)
  for i = 1 to 4 do
    check float_t (Printf.sprintf "t%d" i) expected.(i - 1) sim_out.(i)
  done

let test_recording_is_isolated () =
  (* values created outside a session carry no node; a session does not
     leak after stop *)
  let v = Sim.Value.const 1.0 in
  check bool_t "no node" true (Sim.Value.node v = Sim.Value.no_node);
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  let _ = Sim.Extract.graph env ~step:(fun () -> s <-- cst 1.0) () in
  check bool_t "no active session after extract" true
    (Sim.Record.active () = None);
  let v2 = !!s in
  check bool_t "reads clean after session" true
    (Sim.Value.node v2 = Sim.Value.no_node)

let suite =
  ( "extract",
    [
      Alcotest.test_case "feed-forward expression" `Quick
        test_extract_feedforward_expression;
      Alcotest.test_case "register feedback" `Quick
        test_extract_register_feedback;
      Alcotest.test_case "explicit range bounds loop" `Quick
        test_extract_explicit_range_bounds_loop;
      Alcotest.test_case "dtype becomes quantizer" `Quick
        test_extract_dtype_becomes_quantizer;
      Alcotest.test_case "constants from init" `Quick
        test_extract_constants_from_init;
      Alcotest.test_case "equalizer matches hand-built" `Quick
        test_extract_equalizer_matches_handbuilt;
      Alcotest.test_case "never-written register" `Quick
        test_extract_never_written_register_holds;
      Alcotest.test_case "extracted graph executes" `Quick
        test_extract_graph_executes_like_design;
      Alcotest.test_case "recording isolated" `Quick test_recording_is_isolated;
    ] )
