(* Integration tests: Refine.Flow — the full design-flow loop (Fig. 4)
   and both literature baselines, exercised on real designs. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* the paper's motivational example as a reusable flow design *)
let equalizer_design ?(n = 3000) () =
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:2024 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "y" in
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:7 ~f:5 () in
  let eq = Dsp.Lms_equalizer.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  {
    Refine.Flow.env;
    reset =
      (fun () ->
        Sim.Env.reset env;
        Sim.Channel.clear input;
        Sim.Channel.clear output);
    run = (fun () -> Dsp.Lms_equalizer.run eq ~cycles:n);
  }

(* a loop-free design: converges in a single iteration *)
let fir_design ?(n = 2000) () =
  let env = Sim.Env.create ~seed:3 () in
  let rng = Stats.Rng.create ~seed:12 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n () in
  let input = Sim.Channel.of_fun "in" stimulus in
  let x_dtype = Fixpt.Dtype.make "T" ~n:8 ~f:6 () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.2) 1.2;
  let fir = Dsp.Fir.create env ~coefs:[| 0.25; 0.5; 0.25 |] () in
  let out = Sim.Signal.create env "out" in
  {
    Refine.Flow.env;
    reset =
      (fun () ->
        Sim.Env.reset env;
        Sim.Channel.clear input);
    run =
      (fun () ->
        Sim.Engine.run env ~cycles:n (fun _ ->
            x <-- Sim.Value.of_float (Sim.Channel.get input);
            out <-- Dsp.Fir.step fir !!x));
  }

let test_flow_ff_one_iteration () =
  let d = fir_design () in
  let r = Refine.Flow.refine ~sqnr_signal:"out" d in
  check int_t "one MSB iteration" 1 r.Refine.Flow.msb_iterations;
  check int_t "one LSB iteration" 1 r.Refine.Flow.lsb_iterations;
  (* 1 monitored run + 1 verification run *)
  check int_t "two runs total" 2 r.Refine.Flow.simulation_runs

let test_flow_equalizer_two_msb_iterations () =
  (* the paper's headline: explosion found, one annotation, converged *)
  let d = equalizer_design () in
  let r = Refine.Flow.refine ~sqnr_signal:"v[3]" d in
  check int_t "two MSB iterations" 2 r.Refine.Flow.msb_iterations;
  check int_t "one LSB iteration" 1 r.Refine.Flow.lsb_iterations;
  let ranged =
    List.filter_map
      (function Refine.Flow.Range_annotated (n, _, _) -> Some n | _ -> None)
      (List.concat_map (fun it -> it.Refine.Flow.actions) r.Refine.Flow.iterations)
  in
  check bool_t "annotated the feedback source b" true (ranged = [ "b" ])

let test_flow_derives_types_for_all_float_signals () =
  let d = equalizer_design () in
  let r = Refine.Flow.refine d in
  (* every originally-floating signal that carries data gets a type *)
  List.iter
    (fun name ->
      check bool_t (name ^ " typed") true
        (List.mem_assoc name r.Refine.Flow.types))
    [ "d[0]"; "v[1]"; "v[3]"; "w"; "b"; "y"; "s" ]

let test_flow_applies_types () =
  let d = equalizer_design () in
  let _ = Refine.Flow.refine d in
  let untyped =
    List.filter
      (fun s -> Sim.Signal.dtype s = None && Sim.Signal.assignments s > 0)
      (Sim.Env.signals d.Refine.Flow.env)
  in
  (* v[0] carries only the constant 0 and may stay untyped; everything
     else that moves is quantized after the flow *)
  check bool_t "at most v[0] left floating" true
    (List.for_all (fun s -> Sim.Signal.name s = "v[0]") untyped)

let test_flow_preserves_designer_types () =
  let d = equalizer_design () in
  let _ = Refine.Flow.refine d in
  let x = Sim.Env.find_exn d.Refine.Flow.env "x" in
  match Sim.Signal.dtype x with
  | Some dt -> check Alcotest.string "kept" "T_input" (Fixpt.Dtype.name dt)
  | None -> Alcotest.fail "x lost its type"

let test_flow_sqnr_reported_and_reasonable () =
  let d = equalizer_design () in
  let r = Refine.Flow.refine ~sqnr_signal:"v[3]" d in
  match (r.Refine.Flow.sqnr_before_db, r.Refine.Flow.sqnr_after_db) with
  | Some before, Some after ->
      (* paper: 39.8 -> 39.1 dB; shape: both high, small degradation *)
      check bool_t "before > 30 dB" true (before > 30.0);
      check bool_t "after > 30 dB" true (after > 30.0);
      check bool_t "degradation < 6 dB" true (before -. after < 6.0)
  | _ -> Alcotest.fail "SQNR missing"

let test_flow_iteration_log_shape () =
  let d = equalizer_design () in
  let r = Refine.Flow.refine d in
  let phases = List.map (fun it -> it.Refine.Flow.phase) r.Refine.Flow.iterations in
  check bool_t "msb phases precede lsb" true
    (phases = [ `Msb; `Msb; `Lsb ])

let test_flow_error_override_config () =
  let d = equalizer_design () in
  let config =
    {
      Refine.Flow.default_config with
      Refine.Flow.error_overrides = [ ("b", 0.0078125) ];
    }
  in
  (* force an error() on b by pre-marking divergence conditions is not
     needed: just verify overrides are looked up when annotating *)
  let r = Refine.Flow.refine ~config d in
  check bool_t "flow completes with overrides" true
    (r.Refine.Flow.simulation_runs >= 2)

(* --- Baseline_sim -------------------------------------------------------- *)

let test_baseline_sim_meets_target () =
  let d = fir_design ~n:1500 () in
  let r =
    Refine.Baseline_sim.optimize ~design:d
      ~signals:[ "d[0]"; "d[1]"; "d[2]"; "v[1]"; "v[2]"; "v[3]"; "out" ]
      ~probe:"out" ~target_db:35.0 ()
  in
  check bool_t "target met" true (r.Refine.Baseline_sim.achieved_sqnr_db >= 35.0);
  check bool_t "many runs" true (r.Refine.Baseline_sim.simulation_runs > 10);
  check bool_t "bits positive" true (r.Refine.Baseline_sim.total_bits > 0)

let test_baseline_sim_costs_more_runs_than_hybrid () =
  let d = fir_design ~n:1500 () in
  let hybrid = Refine.Flow.refine ~sqnr_signal:"out" d in
  let d2 = fir_design ~n:1500 () in
  let baseline =
    Refine.Baseline_sim.optimize ~design:d2
      ~signals:[ "d[0]"; "d[1]"; "d[2]"; "v[1]"; "v[2]"; "v[3]"; "out" ]
      ~probe:"out" ~target_db:35.0 ()
  in
  check bool_t "hybrid uses far fewer simulations" true
    (baseline.Refine.Baseline_sim.simulation_runs
    > 5 * hybrid.Refine.Flow.simulation_runs)

(* --- Baseline_ana -------------------------------------------------------- *)

let test_baseline_ana_on_fir () =
  let g = Sfg.Graph.create () in
  let _, y = Dsp.Fir.to_sfg g ~coefs:[| 0.25; 0.5; 0.25 |] ~input_range:(-1.2, 1.2) in
  Sfg.Graph.mark_output g "y" y;
  let r = Refine.Baseline_ana.analyze g ~output:"v[3]" ~sigma_budget:1e-3 in
  check bool_t "no explosion on ff" true (r.Refine.Baseline_ana.exploded = []);
  check bool_t "total bits" true (Refine.Baseline_ana.total_bits r <> None)

let test_baseline_ana_overestimates_vs_hybrid () =
  (* analytical MSBs on the equalizer SFG (annotated) vs the hybrid
     flow's decisions: the analytical ones must not be smaller on
     average (the §1 overestimation claim) *)
  let d = equalizer_design () in
  let hybrid = Refine.Flow.refine d in
  let reference =
    List.filter_map
      (fun (m : Refine.Decision.msb) ->
        match m.Refine.Decision.stat_msb with
        | Some s -> Some (m.Refine.Decision.signal, s)
        | None -> None)
      hybrid.Refine.Flow.msb_decisions
  in
  let g = Dsp.Lms_equalizer.to_sfg ~b_range:(-0.2, 0.2) () in
  let ana = Refine.Baseline_ana.analyze g ~output:"w" ~sigma_budget:1e-2 in
  match Refine.Baseline_ana.overhead_bits ana ~reference with
  | Some overhead -> check bool_t "overhead >= 0" true (overhead >= 0.0)
  | None -> Alcotest.fail "no comparable signals"

let suite =
  ( "flow",
    [
      Alcotest.test_case "ff one iteration" `Quick test_flow_ff_one_iteration;
      Alcotest.test_case "equalizer 2 MSB iters" `Quick
        test_flow_equalizer_two_msb_iterations;
      Alcotest.test_case "types for float signals" `Quick
        test_flow_derives_types_for_all_float_signals;
      Alcotest.test_case "types applied" `Quick test_flow_applies_types;
      Alcotest.test_case "designer types kept" `Quick
        test_flow_preserves_designer_types;
      Alcotest.test_case "sqnr reasonable" `Quick
        test_flow_sqnr_reported_and_reasonable;
      Alcotest.test_case "iteration log" `Quick test_flow_iteration_log_shape;
      Alcotest.test_case "error overrides accepted" `Quick
        test_flow_error_override_config;
      Alcotest.test_case "baseline sim meets target" `Slow
        test_baseline_sim_meets_target;
      Alcotest.test_case "baseline sim run count" `Slow
        test_baseline_sim_costs_more_runs_than_hybrid;
      Alcotest.test_case "baseline ana fir" `Quick test_baseline_ana_on_fir;
      Alcotest.test_case "baseline ana overestimates" `Quick
        test_baseline_ana_overestimates_vs_hybrid;
    ] )
