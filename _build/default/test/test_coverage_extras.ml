(* Remaining-path coverage: instability suspects, apply_types overwrite,
   extraction of data-dependent branches, file writers, and small
   accessors. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let test_instability_suspects () =
  (* an error()-overruled signal whose injected model under-estimates
     the real loop error shows Feedback_gain and is flagged *)
  let env = Sim.Env.create ~seed:3 () in
  let s = Sim.Signal.create env "loop" in
  Sim.Signal.error s 1e-6;
  (* incoming values carry a big consumed error; the injection replaces
     it with a tiny produced one -> ε_p < ε_c *)
  let rng = Stats.Rng.create ~seed:4 in
  for _ = 1 to 500 do
    let v = Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
    s <-- { (cst v) with Sim.Value.fl = v +. Stats.Rng.uniform_sym rng 0.1 }
  done;
  let suspects = Refine.Lsb_rules.instability_suspects env in
  check bool_t "flagged" true
    (List.exists (fun x -> Sim.Signal.name x = "loop") suspects)

let test_apply_types_overwrite () =
  let env = Sim.Env.create () in
  let dt_old = Fixpt.Dtype.make "old" ~n:8 ~f:6 () in
  let dt_new = Fixpt.Dtype.make "new" ~n:10 ~f:8 () in
  let s = Sim.Signal.create env ~dtype:dt_old "s" in
  Refine.Flow.apply_types env [ ("s", dt_new) ];
  check Alcotest.string "preserved by default" "old"
    (Fixpt.Dtype.name (Option.get (Sim.Signal.dtype s)));
  Refine.Flow.apply_types ~overwrite:true env [ ("s", dt_new) ];
  check Alcotest.string "overwritten on request" "new"
    (Fixpt.Dtype.name (Option.get (Sim.Signal.dtype s)))

let test_extract_select_records_both_branches () =
  (* Ops.select: the extracted graph's range must join both branches,
     even though only one executed during the recorded cycle *)
  let env = Sim.Env.create () in
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let y = Sim.Signal.create env "y" in
  let step () =
    x <-- Sim.Value.of_float 0.9;
    y <-- select (!!x >: cst 0.0) (cst 5.0) (cst (-7.0))
  in
  let _, ranges = Sim.Extract.analyze env ~step () in
  match Sfg.Range_analysis.range_of ranges "y" with
  | Some iv ->
      check bool_t "covers the untaken branch" true (Interval.mem (-7.0) iv);
      check bool_t "covers the taken branch" true (Interval.mem 5.0 iv)
  | None -> Alcotest.fail "y missing"

let test_extract_ocaml_if_freezes_branch () =
  (* the documented limitation: an OCaml-level if records only the taken
     branch *)
  let env = Sim.Env.create () in
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let y = Sim.Signal.create env "y" in
  let step () =
    x <-- Sim.Value.of_float 0.9;
    if !!x >: cst 0.0 then y <-- cst 5.0 else y <-- cst (-7.0)
  in
  let _, ranges = Sim.Extract.analyze env ~step () in
  match Sfg.Range_analysis.range_of ranges "y" with
  | Some iv ->
      check bool_t "only the taken branch" true
        (Interval.mem 5.0 iv && not (Interval.mem (-7.0) iv))
  | None -> Alcotest.fail "y missing"

let test_file_writers () =
  let tmp suffix = Filename.temp_file "fixrefine_test" suffix in
  (* VCD *)
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "sig" in
  let vcd = Sim.Vcd.create () in
  Sim.Vcd.probe vcd s;
  Sim.Vcd.start vcd;
  s <-- cst 1.0;
  Sim.Vcd.sample vcd ~time:0;
  let vcd_path = tmp ".vcd" in
  Sim.Vcd.write_file vcd vcd_path;
  let read_all p =
    let ic = open_in p in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b
  in
  check bool_t "vcd file nonempty" true (String.length (read_all vcd_path) > 50);
  Sys.remove vcd_path;
  (* DOT *)
  let g = Sfg.Graph.create () in
  let xn = Sfg.Graph.input g "x" ~lo:0.0 ~hi:1.0 in
  Sfg.Graph.mark_output g "x" xn;
  let dot_path = tmp ".dot" in
  Sfg.Dot.write_file g dot_path ();
  check bool_t "dot file nonempty" true (String.length (read_all dot_path) > 20);
  Sys.remove dot_path;
  (* VHDL *)
  let e =
    Vhdl.Of_sfg.entity ~name:"t" ~formats:(Vhdl.Of_sfg.uniform_formats ~n:8 ~f:4) g
  in
  let vhd_path = tmp ".vhd" in
  Vhdl.Emit.write_file e vhd_path;
  check bool_t "vhd file nonempty" true (String.length (read_all vhd_path) > 100);
  Sys.remove vhd_path

let test_noise_gain_direct () =
  (* unit variance through a 0.5 gain: variance gain 0.25 *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let half = Sfg.Graph.const g 0.5 in
  let y = Sfg.Graph.mul g ~name:"y" x half in
  Sfg.Graph.mark_output g "y" y;
  let ranges = Sfg.Range_analysis.run g in
  check (Alcotest.float 1e-9) "gain 0.25" 0.25
    (Sfg.Wordlength.noise_gain g ~ranges ~src:"x" ~out:"y")

let test_engine_env_accessor () =
  let env = Sim.Env.create () in
  let eng = Sim.Engine.create env in
  check bool_t "same env" true (Sim.Engine.env eng == env)

let test_interpolator_accessors () =
  let env = Sim.Env.create () in
  let ip = Dsp.Interpolator.create env () in
  check int_t "4 taps" 4 (Sim.Sig_array.length (Dsp.Interpolator.taps ip));
  check int_t "4 farrow coeffs" 4
    (Sim.Sig_array.length (Dsp.Interpolator.coeffs ip));
  check int_t "3 horner" 3 (Sim.Sig_array.length (Dsp.Interpolator.horner ip))

let test_value_misc () =
  check bool_t "zero" true (Sim.Value.fx Sim.Value.zero = 0.0);
  check bool_t "one" true (Sim.Value.fx Sim.Value.one = 1.0);
  check bool_t "finite" true (Sim.Value.is_finite (Sim.Value.const 1.0));
  check bool_t "infinite detected" false
    (Sim.Value.is_finite (Sim.Value.const Float.infinity))

let test_fixed_compare () =
  let dt = Fixpt.Dtype.make "t" ~n:8 ~f:6 () in
  let a, _ = Fixpt.Fixed.of_float dt 0.5 in
  let b, _ = Fixpt.Fixed.of_float dt 0.75 in
  check bool_t "ordering" true (Fixpt.Fixed.compare_value a b < 0)

let suite =
  ( "coverage-extras",
    [
      Alcotest.test_case "instability suspects" `Quick
        test_instability_suspects;
      Alcotest.test_case "apply_types overwrite" `Quick
        test_apply_types_overwrite;
      Alcotest.test_case "extract select both branches" `Quick
        test_extract_select_records_both_branches;
      Alcotest.test_case "extract if freezes branch" `Quick
        test_extract_ocaml_if_freezes_branch;
      Alcotest.test_case "file writers" `Quick test_file_writers;
      Alcotest.test_case "noise gain direct" `Quick test_noise_gain_direct;
      Alcotest.test_case "engine env" `Quick test_engine_env_accessor;
      Alcotest.test_case "interpolator accessors" `Quick
        test_interpolator_accessors;
      Alcotest.test_case "value misc" `Quick test_value_misc;
      Alcotest.test_case "fixed compare" `Quick test_fixed_compare;
    ] )
