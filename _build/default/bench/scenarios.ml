(* Shared workload builders for the reproduction experiments.

   Each builder returns a fresh, fully deterministic Flow.design (plus
   whatever probes the experiment needs), so every experiment — and
   every Bechamel measurement run — starts from the same state. *)

open Fixrefine

(* --- the motivational example (Fig. 1, Tables 1-2) -------------------- *)

type equalizer = {
  design : Refine.Flow.design;
  eq : Dsp.Lms_equalizer.t;
  sent : float array;
  output : Sim.Channel.t;
}

let equalizer ?(n = 4000) ?(steered = true) ?(seed = 2024)
    ?(noise_sigma = 0.02) () =
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed in
  let stimulus, sent =
    Dsp.Channel_model.isi_awgn ~noise_sigma ~rng ~n_symbols:n ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "decisions" in
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:7 ~f:5 () in
  let eq =
    Dsp.Lms_equalizer.create env ~steered ~x_dtype ~input ~output ()
  in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Lms_equalizer.run eq ~cycles:n);
    }
  in
  { design; eq; sent; output }

(* --- the complex example (Fig. 5, §6.1) -------------------------------- *)

type timing = {
  t_design : Refine.Flow.design;
  tr : Dsp.Timing_recovery.t;
  t_sent : float array;
  t_output : Sim.Channel.t;
}

let timing ?(n_symbols = 4000) ?(tau = 0.3) ?(noise_sigma = 0.01)
    ?(knowledge_ranges = true) ?(input_bits = (10, 8)) ?kp ?ki () =
  let env = Sim.Env.create ~seed:5 () in
  let rng = Stats.Rng.create ~seed:99 in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.timing_offset_pam ~rng ~n_symbols ~tau ~noise_sigma ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "symbols" in
  let n, f = input_bits in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n ~f ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let tr = Dsp.Timing_recovery.create env ?kp ?ki ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Timing_recovery.input_signal tr) (-1.6) 1.6;
  if knowledge_ranges then begin
    (* the paper's 5 knowledge-based saturation choices *)
    Sim.Signal.range (Dsp.Nco.mu (Dsp.Timing_recovery.nco tr)) 0.0 1.0;
    Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
    Sim.Signal.range (Sim.Env.find_exn env "ted_err") (-4.0) 4.0;
    Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
    Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0
  end;
  let t_design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Timing_recovery.run tr ~samples:n_samples);
    }
  in
  { t_design; tr; t_sent = sent; t_output = output }

(* --- a loop-free FIR (quickstart-scale workload) ------------------------ *)

let fir_coefs = [| 0.1; 0.25; 0.3; 0.25; 0.1 |]

let fir ?(n = 3000) () =
  let env = Sim.Env.create ~seed:3 () in
  let rng = Stats.Rng.create ~seed:12 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n () in
  let input = Sim.Channel.of_fun "in" stimulus in
  let x_dtype = Fixpt.Dtype.make "T" ~n:8 ~f:6 () in
  let x = Sim.Signal.create env ~dtype:x_dtype "x" in
  Sim.Signal.range x (-1.2) 1.2;
  let f = Dsp.Fir.create env ~coefs:fir_coefs () in
  let out = Sim.Signal.create env "out" in
  {
    Refine.Flow.env;
    reset =
      (fun () ->
        Sim.Env.reset env;
        Sim.Channel.clear input);
    run =
      (fun () ->
        Sim.Engine.run env ~cycles:n (fun _ ->
            let open Sim.Ops in
            x <-- Sim.Value.of_float (Sim.Channel.get input);
            out <-- Dsp.Fir.step f !!x));
  }

(* --- SER scoring --------------------------------------------------------- *)

let ser ?(skip = 300) ~sent output =
  let decided = Array.of_list (Sim.Channel.recorded output) in
  Dsp.Pam.best_ser ~skip ~sent ~decided ()
