bench/scenarios.ml: Array Dsp Fixpt Fixrefine Refine Sim Stats
