bench/main.mli:
