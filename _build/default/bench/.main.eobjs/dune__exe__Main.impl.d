bench/main.ml: Analyze Array Bechamel Benchmark Dsp Fixpt Fixrefine Float Format Hashtbl Interval List Measure Option Printf Refine Scenarios Sfg Sim Staged Stats String Sys Test Time Toolkit Vhdl
