(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation, plus the ablations called out in DESIGN.md, and
   registers one Bechamel timing benchmark per experiment.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- one experiment
     dune exec bench/main.exe -- list    -- experiment ids

   Experiment ids: table1 table2 sqnr fig1 fig2 fig3 fig4 fig5
   msb-threeway compare ablate-klsb ablate-error ablate-steering
   ablate-adaptive-lsb ablate-fft-scaling ablate-widen summary simbench
   syncbench compilebench verifybench sweepbench tracebench bench. *)

open Fixrefine

let section title =
  Format.printf "@.==================== %s ====================@." title

(* ======================================================================= *)
(* Table 1 — MSB analysis of the LMS equalizer, both iterations           *)
(* ======================================================================= *)

let table1 () =
  section "Table 1: MSB analysis (LMS equalizer)";
  let s = Scenarios.equalizer () in
  (* iteration 1: raw monitored run, feedback explosion visible *)
  s.Scenarios.design.Refine.Flow.reset ();
  s.Scenarios.design.Refine.Flow.run ();
  Format.printf "--- 1st iteration ---@.";
  Refine.Report.print_msb s.Scenarios.design.Refine.Flow.env;
  Format.printf "exploded: %s@."
    (String.concat ", "
       (List.map Sim.Signal.name
          (Refine.Msb_rules.exploded_signals s.Scenarios.design.Refine.Flow.env)));
  (* let the flow run iteration 2 (annotation + re-run) *)
  let result = Refine.Flow.refine ~sqnr_signal:"v[3]" s.Scenarios.design in
  Format.printf "@.--- 2nd iteration (after %s) ---@."
    (String.concat "; "
       (List.concat_map
          (fun it ->
            List.map
              (Format.asprintf "%a" Refine.Flow.pp_action)
              it.Refine.Flow.actions)
          result.Refine.Flow.iterations));
  Refine.Report.print_msb s.Scenarios.design.Refine.Flow.env;
  Format.printf "paper: b, w explode in iteration 1; b.range() resolves both in iteration 2@.";
  Format.printf "measured: MSB converged after %d iterations@."
    result.Refine.Flow.msb_iterations

(* ======================================================================= *)
(* Table 2 — LSB analysis                                                  *)
(* ======================================================================= *)

let table2 () =
  section "Table 2: LSB analysis (LMS equalizer, input <7,5,tc>)";
  let s = Scenarios.equalizer () in
  let result = Refine.Flow.refine ~sqnr_signal:"v[3]" s.Scenarios.design in
  Refine.Report.print_lsb s.Scenarios.design.Refine.Flow.env;
  Format.printf "@.paper: one iteration resolves every LSB (input quantized only)@.";
  Format.printf "measured: LSB resolved in %d iteration(s)@."
    result.Refine.Flow.lsb_iterations;
  Format.printf "derived types:@.";
  List.iter
    (fun (n, dt) -> Format.printf "  %-6s %s@." n (Fixpt.Dtype.to_string dt))
    result.Refine.Flow.types

(* ======================================================================= *)
(* §6 SQNR check                                                           *)
(* ======================================================================= *)

let sqnr () =
  section "SQNR before/after LSB refinement (paper: 39.8 dB -> 39.1 dB)";
  let s = Scenarios.equalizer () in
  let result = Refine.Flow.refine ~sqnr_signal:"v[3]" s.Scenarios.design in
  (match
     (result.Refine.Flow.sqnr_before_db, result.Refine.Flow.sqnr_after_db)
   with
  | Some b, Some a ->
      Format.printf
        "measured at v[3]: %.1f dB (input quantized only) -> %.1f dB (all signals quantized)@."
        b a;
      Format.printf "degradation: %.1f dB (paper: 0.7 dB)@." (b -. a)
  | _ -> Format.printf "SQNR unavailable@.");
  Format.printf "post-refinement symbol error rate: %.4f@."
    (Scenarios.ser ~sent:s.Scenarios.sent s.Scenarios.output)

(* ======================================================================= *)
(* Fig. 1 — the equalizer processor works                                  *)
(* ======================================================================= *)

let fig1 () =
  section "Fig. 1: LMS equalizer behavioural run";
  let s = Scenarios.equalizer () in
  s.Scenarios.design.Refine.Flow.reset ();
  s.Scenarios.design.Refine.Flow.run ();
  let env = s.Scenarios.design.Refine.Flow.env in
  Format.printf "signals: %d, cycles: 4000@."
    (List.length (Sim.Env.signals env));
  Format.printf "adapted feedback coefficient b = %.4f@."
    (Sim.Signal.peek_fx (Dsp.Lms_equalizer.b s.Scenarios.eq));
  Format.printf "floating-point SER: %.4f@."
    (Scenarios.ser ~sent:s.Scenarios.sent s.Scenarios.output)

(* ======================================================================= *)
(* Fig. 2 — operator overloading: three computations per operation         *)
(* ======================================================================= *)

let fig2 () =
  section "Fig. 2: one assignment drives value, range and error monitors";
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "T" ~n:6 ~f:4 () in
  let a = Sim.Signal.create env ~dtype:dt "a" in
  let b = Sim.Signal.create env ~dtype:dt "b" in
  let c = Sim.Signal.create env ~dtype:dt "c" in
  Sim.Signal.range a (-1.0) 1.0;
  Sim.Signal.range b (-1.0) 1.0;
  let open Sim.Ops in
  List.iter
    (fun (va, vb) ->
      a <-- Sim.Value.of_float va;
      b <-- Sim.Value.of_float vb;
      let product = !!a *: !!b in
      c <-- product;
      Format.printf
        "a=%-8g b=%-8g  c: fx=%-9g fl=%-9g propagated %s@."
        va vb (Sim.Signal.peek_fx c) (Sim.Signal.peek_fl c)
        (Interval.to_string (Sim.Value.iv product)))
    [ (0.3, 0.7); (-0.9, 0.52); (0.77, -0.34) ];
  Format.printf "@.after 3 operations, c's monitors hold:@.";
  Format.printf "  stat range     : %s@."
    (match Sim.Signal.stat_range c with
    | Some (lo, hi) -> Printf.sprintf "[%g, %g]" lo hi
    | None -> "-");
  Format.printf "  propagated     : %s@."
    (match Sim.Signal.prop_range c with
    | Some (lo, hi) -> Printf.sprintf "[%g, %g]" lo hi
    | None -> "-");
  let e = Stats.Err_stats.produced (Sim.Signal.err_stats c) in
  Format.printf "  error sigma    : %.2e (m^ = %.2e)@." (Stats.Running.stddev e)
    (Stats.Running.max_abs e)

(* ======================================================================= *)
(* Fig. 3 — consumed vs produced error across a quantizer                  *)
(* ======================================================================= *)

let fig3 () =
  section "Fig. 3: consumed (eps_c) vs produced (eps_p) error statistics";
  let env = Sim.Env.create () in
  let t1 = Fixpt.Dtype.make "T1" ~n:7 ~f:5 () in
  let t2 = Fixpt.Dtype.make "T2" ~n:5 ~f:3 () in
  let fixed1 = Sim.Signal.create env ~dtype:t1 "fixed1" in
  let fixed2 = Sim.Signal.create env ~dtype:t2 "fixed2" in
  let rng = Stats.Rng.create ~seed:7 in
  let open Sim.Ops in
  for _ = 1 to 5000 do
    fixed1 <-- Sim.Value.of_float (Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0);
    fixed2 <-- (!!fixed1 *: cst 0.9)
  done;
  List.iter
    (fun s ->
      let e = Sim.Signal.err_stats s in
      let pr what r =
        Format.printf "  %s %-9s m^=%.2e mu=%+.2e sigma=%.2e@."
          (Sim.Signal.name s) what (Stats.Running.max_abs r)
          (Stats.Running.mean r) (Stats.Running.stddev r)
      in
      pr "consumed" (Stats.Err_stats.consumed e);
      pr "produced" (Stats.Err_stats.produced e);
      Format.printf "  %s precision loss verdict: %s@." (Sim.Signal.name s)
        (Stats.Err_stats.loss_to_string (Stats.Err_stats.loss_verdict e)))
    [ fixed1; fixed2 ];
  Format.printf
    "@.expected: fixed1 consumes no error and produces its own quantization;@.";
  Format.printf
    "fixed2 consumes fixed1's error and produces more (coarser type) -> 'quantization'.@."

(* ======================================================================= *)
(* Fig. 4 — the design flow loop                                           *)
(* ======================================================================= *)

let fig4 () =
  section "Fig. 4: design-flow iteration log (equalizer)";
  let s = Scenarios.equalizer () in
  let result = Refine.Flow.refine ~sqnr_signal:"v[3]" s.Scenarios.design in
  List.iter
    (fun it -> Format.printf "%a@." Refine.Flow.pp_iteration it)
    result.Refine.Flow.iterations;
  Format.printf "monitored simulation runs: %d@."
    result.Refine.Flow.simulation_runs;
  Format.printf "%s@."
    (Refine.Report.summary s.Scenarios.design.Refine.Flow.env
       result.Refine.Flow.msb_decisions result.Refine.Flow.lsb_decisions)

(* ======================================================================= *)
(* Fig. 5 + §6.1 — the timing-recovery loop                                *)
(* ======================================================================= *)

let fig5 () =
  section "Fig. 5 / Section 6.1: PAM timing-recovery loop";
  let s = Scenarios.timing () in
  let env = s.Scenarios.t_design.Refine.Flow.env in
  Format.printf "signals subject to refinement: %d (paper: 61)@."
    (List.length (Sim.Env.signals env));

  (* what a raw run (no knowledge ranges) would have shown *)
  let raw = Scenarios.timing ~knowledge_ranges:false () in
  raw.Scenarios.t_design.Refine.Flow.reset ();
  raw.Scenarios.t_design.Refine.Flow.run ();
  let raw_env = raw.Scenarios.t_design.Refine.Flow.env in
  let exploded =
    List.map Sim.Signal.name (Refine.Msb_rules.exploded_signals raw_env)
  in
  let exploded_regs =
    List.filter
      (fun n ->
        Sim.Signal.kind (Sim.Env.find_exn raw_env n) = Sim.Env.Registered)
      exploded
  in
  Format.printf
    "without annotations: %d signals explode (%s); feedback sources: %s@."
    (List.length exploded)
    (String.concat ", " exploded)
    (String.concat ", " exploded_regs);
  (* case-(b) accumulators among registers *)
  let case_b =
    List.filter
      (fun sg ->
        Sim.Signal.kind sg = Sim.Env.Registered
        && (Refine.Msb_rules.decide sg).Refine.Decision.case
           = Refine.Decision.Prop_pessimistic)
      (Sim.Env.signals raw_env)
  in
  Format.printf
    "feedback accumulators decided saturated by rule (b): %s (paper: 2)@."
    (String.concat ", " (List.map Sim.Signal.name case_b));

  (* the annotated flow *)
  let config =
    { Refine.Flow.default_config with Refine.Flow.auto_error_lsb = -8 }
  in
  let result = Refine.Flow.refine ~config ~sqnr_signal:"out" s.Scenarios.t_design in
  let saturated =
    List.filter
      (fun (d : Refine.Decision.msb) ->
        Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode)
      result.Refine.Flow.msb_decisions
  in
  Format.printf "@.with 5 knowledge-based ranges:@.";
  Format.printf "  saturated signals: %d of %d (paper: 7 of 61)@."
    (List.length saturated)
    (List.length result.Refine.Flow.msb_decisions);
  Format.printf "  MSB iterations: %d (paper: 2), LSB iterations: %d (paper: 1+overrule)@."
    result.Refine.Flow.msb_iterations result.Refine.Flow.lsb_iterations;
  let overhead =
    Refine.Msb_rules.overhead_bits_per_signal
      (List.filter
         (fun (d : Refine.Decision.msb) ->
           not (Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode))
         result.Refine.Flow.msb_decisions)
  in
  Format.printf
    "  MSB overhead (prop vs stat) on non-saturated signals: %.2f bits/signal (paper: 0.22)@."
    overhead;
  List.iter
    (fun it ->
      if it.Refine.Flow.actions <> [] then
        Format.printf "  %a@." Refine.Flow.pp_iteration it)
    result.Refine.Flow.iterations;
  Format.printf "  SER after refinement: %.4f@."
    (Scenarios.ser ~skip:500 ~sent:s.Scenarios.t_sent s.Scenarios.t_output);

  (* the sensitive variant: noisy channel, coarse input, hot loop gains —
     the float execution slips a cycle against the fixed one and the NCO
     phase error monitoring destabilizes exactly as §6.1 reports for the
     D signal *)
  Format.printf "@.sensitive variant (noisy channel, coarse input, hot loop):@.";
  let sv =
    Scenarios.timing ~n_symbols:8000 ~noise_sigma:0.2 ~input_bits:(6, 4)
      ~kp:0.05 ~ki:5e-3 ()
  in
  sv.Scenarios.t_design.Refine.Flow.reset ();
  sv.Scenarios.t_design.Refine.Flow.run ();
  let div =
    List.map Sim.Signal.name
      (Refine.Lsb_rules.diverged_signals sv.Scenarios.t_design.Refine.Flow.env)
  in
  let div_regs =
    List.filter
      (fun n ->
        Sim.Signal.kind
          (Sim.Env.find_exn sv.Scenarios.t_design.Refine.Flow.env n)
        = Sim.Env.Registered)
      div
  in
  Format.printf "  diverged error monitors: %d; feedback roots: %s@."
    (List.length div)
    (if div_regs = [] then "(none)" else String.concat ", " div_regs);
  let result2 =
    Refine.Flow.refine ~config ~sqnr_signal:"out" sv.Scenarios.t_design
  in
  let overruled =
    List.concat_map
      (fun it ->
        List.filter_map
          (function Refine.Flow.Error_annotated (n, h) -> Some (n, h) | _ -> None)
          it.Refine.Flow.actions)
      result2.Refine.Flow.iterations
  in
  Format.printf "  error() overrulings applied by the flow: %s (paper: 1, on the NCO D signal)@."
    (if overruled = [] then "(none needed)"
     else
       String.concat ", "
         (List.map (fun (n, h) -> Printf.sprintf "%s(%g)" n h) overruled))

(* ======================================================================= *)
(* §4.1 — the three MSB techniques side by side                            *)
(* ======================================================================= *)

let msb_threeway () =
  section "Section 4.1: statistic vs quasi-analytical vs analytical MSB";
  let s = Scenarios.equalizer () in
  let env = s.Scenarios.design.Refine.Flow.env in
  s.Scenarios.design.Refine.Flow.reset ();
  s.Scenarios.design.Refine.Flow.run ();
  (* the range() remedy so all three techniques produce finite answers *)
  Sim.Signal.range (Dsp.Lms_equalizer.b s.Scenarios.eq) (-0.2) 0.2;
  s.Scenarios.design.Refine.Flow.reset ();
  s.Scenarios.design.Refine.Flow.run ();
  (* analytical: extract the flowgraph automatically from one executed
     cycle and run the static fixpoint *)
  let _, analytical =
    Sim.Extract.analyze env
      ~step:(fun () -> Dsp.Lms_equalizer.step s.Scenarios.eq)
      ()
  in
  Format.printf "%-8s %6s %6s %6s@." "signal" "stat" "quasi" "ana";
  List.iter
    (fun sg ->
      let name = Sim.Signal.name sg in
      let show = function Some m -> string_of_int m | None -> "!!" in
      let stat = Refine.Msb_rules.msb_of_range (Sim.Signal.stat_range sg) in
      let quasi = Refine.Msb_rules.msb_of_range (Sim.Signal.prop_range sg) in
      let ana = Sfg.Range_analysis.msb_of analytical name in
      Format.printf "%-8s %6s %6s %6s@." name (show stat) (show quasi)
        (show ana))
    (Dsp.Lms_equalizer.table_signals s.Scenarios.eq);
  Format.printf
    "@.quasi-analytical (in-simulation propagation) and analytical (static@.";
  Format.printf
    "fixpoint on the auto-extracted flowgraph) agree; statistic-based is@.";
  Format.printf
    "stimulus-dependent and 0-1 bits tighter — the paper's trade-off.@."

(* ======================================================================= *)
(* Comparison: hybrid vs pure simulation vs pure analysis                  *)
(* ======================================================================= *)

let compare () =
  section "Comparison: hybrid flow vs simulation-based [1] vs analytical [3]";
  (* hybrid on the FIR workload; bits counted over the same datapath
     signal set the baseline optimizes (coefficient ROM widths are a
     transfer-function choice, outside both methods) *)
  let datapath =
    [ "d[0]"; "d[1]"; "d[2]"; "d[3]"; "d[4]";
      "v[1]"; "v[2]"; "v[3]"; "v[4]"; "v[5]"; "out" ]
  in
  let d = Scenarios.fir () in
  let hybrid = Refine.Flow.refine ~sqnr_signal:"out" d in
  let hybrid_bits =
    List.fold_left
      (fun acc name ->
        match List.assoc_opt name hybrid.Refine.Flow.types with
        | Some dt -> acc + Fixpt.Dtype.n dt
        | None -> acc)
      0 datapath
  in
  Format.printf "%-22s %14s %12s %12s@." "method" "simulations" "total bits"
    "SQNR (dB)";
  Format.printf "%-22s %14d %12d %12s@." "hybrid (this paper)"
    hybrid.Refine.Flow.simulation_runs hybrid_bits
    (match hybrid.Refine.Flow.sqnr_after_db with
    | Some v -> Printf.sprintf "%.1f" v
    | None -> "-");

  (* simulation-based baseline, same SQNR target as the hybrid achieved *)
  let target =
    match hybrid.Refine.Flow.sqnr_after_db with Some v -> v | None -> 40.0
  in
  let d2 = Scenarios.fir () in
  let sim_base =
    Refine.Baseline_sim.optimize ~design:d2 ~signals:datapath ~probe:"out"
      ~target_db:target ()
  in
  Format.printf "%-22s %14d %12d %12.1f@." "simulation-based [1]"
    sim_base.Refine.Baseline_sim.simulation_runs
    sim_base.Refine.Baseline_sim.total_bits
    sim_base.Refine.Baseline_sim.achieved_sqnr_db;

  (* analytical baseline on the same FIR flowgraph *)
  let g = Sfg.Graph.create () in
  let _, y = Dsp.Fir.to_sfg g ~coefs:Scenarios.fir_coefs ~input_range:(-1.2, 1.2) in
  Sfg.Graph.mark_output g "y" y;
  (* budget: match the hybrid's output noise, sigma = step-derived *)
  let ana = Refine.Baseline_ana.analyze g ~output:"v[5]" ~sigma_budget:2e-3 in
  Format.printf "%-22s %14d %12s %12s@." "analytical [3]" 0
    (match Refine.Baseline_ana.total_bits ana with
    | Some b -> string_of_int b
    | None -> "-")
    "(worst-case)";
  let reference =
    List.filter_map
      (fun (m : Refine.Decision.msb) ->
        Option.map
          (fun s -> (m.Refine.Decision.signal, s))
          m.Refine.Decision.stat_msb)
      hybrid.Refine.Flow.msb_decisions
  in
  (match Refine.Baseline_ana.overhead_bits ana ~reference with
  | Some o ->
      Format.printf
        "@.analytical MSB overestimation vs observed ranges: %+.2f bits/signal@."
        o
  | None -> ());
  Format.printf
    "@.paper's claim: hybrid keeps the iteration count of the analytical method@.";
  Format.printf
    "(a few runs) at the wordlength quality of the simulation method.@."

(* ======================================================================= *)
(* Ablations                                                               *)
(* ======================================================================= *)

let ablate_klsb () =
  section "Ablation: the k_LSB constant (paper: optimal in [1, 4])";
  Format.printf "%6s %16s %14s %14s@." "k_LSB" "fractional bits"
    "SQNR after" "degradation";
  List.iter
    (fun k ->
      let s = Scenarios.equalizer () in
      let config =
        {
          Refine.Flow.default_config with
          Refine.Flow.lsb =
            { Refine.Lsb_rules.default_config with Refine.Lsb_rules.k_lsb = k };
        }
      in
      let r = Refine.Flow.refine ~config ~sqnr_signal:"v[3]" s.Scenarios.design in
      let frac_bits =
        List.fold_left (fun acc (_, dt) -> acc + max 0 (Fixpt.Dtype.f dt)) 0
          r.Refine.Flow.types
      in
      match (r.Refine.Flow.sqnr_before_db, r.Refine.Flow.sqnr_after_db) with
      | Some b, Some a ->
          Format.printf "%6g %16d %13.1f %13.1f@." k frac_bits a (b -. a)
      | _ -> Format.printf "%6g %16d %13s@." k frac_bits "-")
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ];
  Format.printf
    "@.smaller k: more fractional bits, less degradation (conservative);@.";
  Format.printf "beyond k=4 the degradation dominates — the paper's range holds.@."

let ablate_error () =
  section "Ablation: error() half-width on an overruled feedback signal";
  Format.printf "%12s %14s %14s@." "error(h)" "sigma(eps_p)" "lsb inferred";
  List.iter
    (fun h ->
      let env = Sim.Env.create ~seed:9 () in
      let s = Sim.Signal.create env "eta" in
      Sim.Signal.error s h;
      let open Sim.Ops in
      for i = 0 to 3999 do
        s <-- cst (Float.of_int (i mod 7) /. 7.0)
      done;
      let d = Refine.Lsb_rules.decide s in
      Format.printf "%12g %14.3e %14s@." h d.Refine.Decision.sigma
        (match d.Refine.Decision.lsb_pos with
        | Some p -> string_of_int p
        | None -> "-"))
    [ 0.5; 0.0625; 0.015625; 0.001953125 ];
  Format.printf
    "@.sigma tracks h/sqrt(3); the inferred LSB follows the injected model —@.";
  Format.printf
    "the designer's error() choice directly sets the feedback signal's type.@."

let ablate_steering () =
  section "Ablation: fixed-point-steered vs independent control decisions";
  let run steered =
    (* a noisy channel partially closes the eye, so the fixed and float
       slicer decisions actually get the chance to disagree *)
    let s = Scenarios.equalizer ~steered ~noise_sigma:0.25 () in
    s.Scenarios.design.Refine.Flow.reset ();
    s.Scenarios.design.Refine.Flow.run ();
    let env = s.Scenarios.design.Refine.Flow.env in
    let w = Sim.Env.find_exn env "w" in
    let e = Stats.Err_stats.produced (Sim.Signal.err_stats w) in
    (Stats.Running.stddev e, Stats.Running.max_abs e)
  in
  let s_sig, s_max = run true in
  let u_sig, u_max = run false in
  Format.printf "%-28s %14s %14s@." "control" "sigma(eps at w)" "max |eps|";
  Format.printf "%-28s %14.3e %14.3e@." "steered (paper, section 4.2)" s_sig s_max;
  Format.printf "%-28s %14.3e %14.3e@." "independent (ablation)" u_sig u_max;
  Format.printf
    "@.independent decisions let the two executions diverge at slicer@.";
  Format.printf
    "disagreements: the peak error inflates %.0fx (a decision distance, not@."
    (u_max /. Float.max s_max 1e-30);
  Format.printf
    "quantization noise) — the reason §4.2 steers control from fixed point.@."

let ablate_adaptive_lsb () =
  section
    "Ablation: coefficient wordlength of an adaptive filter (gradient \
     stalling)";
  let unknown = [| 0.4; -0.2; 0.1; 0.3 |] in
  let n = 4000 in
  let rng = Stats.Rng.create ~seed:77 in
  let input = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let desired =
    Array.init n (fun k ->
        let acc = ref 0.0 in
        Array.iteri
          (fun j h ->
            if k - 1 - j >= 0 then acc := !acc +. (h *. input.(k - 1 - j)))
          unknown;
        !acc)
  in
  let mse_for f_bits =
    let env = Sim.Env.create () in
    let f = Dsp.Lms_fir.create env ~taps:4 ~mu:0.05 () in
    (match f_bits with
    | None -> ()
    | Some fb ->
        Dsp.Lms_fir.set_coef_dtype f
          (Fixpt.Dtype.make "W" ~n:(fb + 2) ~f:fb
             ~overflow:Fixpt.Overflow_mode.Saturate ()));
    let errs = Array.make n 0.0 in
    let i = ref 0 in
    Sim.Engine.run env ~cycles:n (fun _ ->
        let open Sim.Ops in
        let _, e =
          Dsp.Lms_fir.step f ~input:(cst input.(!i)) ~desired:(cst desired.(!i))
        in
        errs.(!i) <- Sim.Value.fx e;
        incr i);
    Dsp.Lms_fir.tail_mse errs ~tail:800
  in
  Format.printf "%16s %14s@." "coef frac bits" "tail MSE";
  List.iter
    (fun fb ->
      Format.printf "%16d %14.3e@." fb (mse_for (Some fb)))
    [ 4; 6; 8; 10; 12; 14 ];
  Format.printf "%16s %14.3e@." "float" (mse_for None);
  Format.printf
    "@.the misadjustment floor falls ~4x per coefficient bit until the@.";
  Format.printf
    "update term drops below half an LSB and adaptation stalls — the@.";
  Format.printf
    "coefficient LSB of an adaptive filter is set by the loop dynamics,@.";
  Format.printf
    "not by the sigma-rule on the data path (the refinement flow treats@.";
  Format.printf "such registers like error()-overruled feedback signals).@."

let ablate_fft_scaling () =
  section "Ablation: FFT stage scaling (bit growth vs noise growth)";
  let n = 16 and transforms = 150 in
  let run scale =
    let env = Sim.Env.create ~seed:17 () in
    let rng = Stats.Rng.create ~seed:23 in
    (* uniform amplitudes (not ±1): exactly-representable inputs would
       enter the transform noiselessly and defeat the LSB analysis *)
    let stim =
      Array.init (transforms * n) (fun _ ->
          Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
    in
    let in_dtype = Fixpt.Dtype.make "T_in" ~n:10 ~f:8 () in
    let xr = Sim.Sig_array.create env ~dtype:in_dtype "xr" n in
    Sim.Sig_array.range xr (-1.0) 1.0;
    let fft = Dsp.Fft.create env ~scale ~n () in
    let probe = Printf.sprintf "fft_re%d[0]" (Dsp.Fft.stage_count fft) in
    let design =
      {
        Refine.Flow.env;
        reset = (fun () -> Sim.Env.reset env);
        run =
          (fun () ->
            Sim.Engine.run env ~cycles:transforms (fun c ->
                let open Sim.Ops in
                let input =
                  Array.init n (fun i ->
                      let s = Sim.Sig_array.get xr i in
                      s <-- Sim.Value.of_float stim.((c * n) + i);
                      (!!s, cst 0.0))
                in
                ignore (Dsp.Fft.transform fft input)));
      }
    in
    let r = Refine.Flow.refine ~sqnr_signal:probe design in
    let out_msb =
      List.fold_left
        (fun acc (d : Refine.Decision.msb) ->
          if String.length d.Refine.Decision.signal >= 6 then
            max acc d.Refine.Decision.msb_pos
          else acc)
        min_int r.Refine.Flow.msb_decisions
    in
    let total_bits =
      List.fold_left (fun a (_, dt) -> a + Fixpt.Dtype.n dt) 0
        r.Refine.Flow.types
    in
    (out_msb, total_bits, r.Refine.Flow.sqnr_after_db)
  in
  let m1, b1, s1 = run false in
  let m2, b2, s2 = run true in
  let show = function Some v -> Printf.sprintf "%.1f" v | None -> "-" in
  Format.printf "%-22s %10s %12s %12s@." "architecture" "max MSB" "total bits"
    "SQNR (dB)";
  Format.printf "%-22s %10d %12d %12s@." "unscaled butterflies" m1 b1 (show s1);
  Format.printf "%-22s %10d %12d %12s@." "1/2 per stage" m2 b2 (show s2);
  Format.printf
    "@.unscaled butterflies grow the MSB by ~1 bit/stage; 1/2-per-stage@.";
  Format.printf
    "scaling keeps it flat.  Because scaling moves every stage value by an@.";
  Format.printf
    "exact power of two, the sigma-rule moves each LSB down by the same@.";
  Format.printf
    "amount the MSB came down: the refinement automatically reallocates@.";
  Format.printf
    "integer bits into fractional bits, and total wordlength and SQNR are@.";
  Format.printf
    "invariant — the architecture choice is about overflow hardware, not@.";
  Format.printf "precision, once the wordlengths are derived per signal.@."

let ablate_widen () =
  section "Ablation: widening threshold of the analytical range fixpoint";
  Format.printf "%12s %12s %12s@." "widen_after" "iterations" "exploded";
  let g = Dsp.Lms_equalizer.to_sfg ~b_range:(-0.2, 0.2) () in
  List.iter
    (fun w ->
      let r = Sfg.Range_analysis.run ~widen_after:w ~max_iter:256 g in
      Format.printf "%12d %12d %12d@." w r.Sfg.Range_analysis.iterations
        (List.length r.Sfg.Range_analysis.exploded))
    [ 2; 4; 8; 16; 32; 64 ];
  Format.printf
    "@.the annotated equalizer needs no widening (loop already bounded);@.";
  let g2 = Dsp.Lms_equalizer.to_sfg () in
  List.iter
    (fun w ->
      let r = Sfg.Range_analysis.run ~widen_after:w ~max_iter:256 g2 in
      Format.printf "unannotated, widen_after=%2d: %3d iterations, %d exploded@."
        w r.Sfg.Range_analysis.iterations
        (List.length r.Sfg.Range_analysis.exploded))
    [ 2; 16; 64 ];
  Format.printf
    "on the unannotated loop, a smaller threshold detects the explosion sooner.@."

(* ======================================================================= *)
(* Capstone: the flow across every design in the repository               *)
(* ======================================================================= *)

let summary () =
  section "Summary: the refinement flow across every design";
  let row name (design : Refine.Flow.design) probe =
    let r = Refine.Flow.refine ~sqnr_signal:probe design in
    let env = design.Refine.Flow.env in
    let saturated =
      List.length
        (List.filter
           (fun (d : Refine.Decision.msb) ->
             Fixpt.Overflow_mode.is_saturating d.Refine.Decision.mode)
           r.Refine.Flow.msb_decisions)
    in
    let bits =
      List.fold_left (fun a (_, dt) -> a + Fixpt.Dtype.n dt) 0
        r.Refine.Flow.types
    in
    let drop =
      match (r.Refine.Flow.sqnr_before_db, r.Refine.Flow.sqnr_after_db) with
      | Some b, Some a -> Printf.sprintf "%.1f" (b -. a)
      | _ -> "-"
    in
    Format.printf "%-16s %8d %5d %5d %5d %5d %11d %10s@." name
      (List.length (Sim.Env.signals env))
      r.Refine.Flow.msb_iterations r.Refine.Flow.lsb_iterations
      r.Refine.Flow.simulation_runs saturated bits drop
  in
  Format.printf "%-16s %8s %5s %5s %5s %5s %11s %10s@." "design" "signals"
    "MSB" "LSB" "runs" "sat" "typed bits" "SQNR drop";
  let eq = Scenarios.equalizer () in
  row "lms-equalizer" eq.Scenarios.design "v[3]";
  let tr = Scenarios.timing () in
  row "timing-recovery" tr.Scenarios.t_design "out";
  row "fir-lowpass" (Scenarios.fir ()) "out";
  (* cordic *)
  let env = Sim.Env.create ~seed:31 () in
  let rngc = Stats.Rng.create ~seed:4 in
  let cor = Dsp.Cordic.create env ~iters:12 () in
  let in_dt = Fixpt.Dtype.make "T" ~n:12 ~f:10 () in
  let xin = Sim.Signal.create env ~dtype:in_dt "xin" in
  let yin = Sim.Signal.create env ~dtype:in_dt "yin" in
  let zin = Sim.Signal.create env ~dtype:in_dt "zin" in
  Sim.Signal.range xin (-1.0) 1.0;
  Sim.Signal.range yin (-1.0) 1.0;
  Sim.Signal.range zin (-1.6) 1.6;
  let cordic_design =
    {
      Refine.Flow.env;
      reset = (fun () -> Sim.Env.reset env);
      run =
        (fun () ->
          let local = Stats.Rng.copy rngc in
          Sim.Engine.run env ~cycles:1500 (fun _ ->
              let open Sim.Ops in
              let phi = Stats.Rng.uniform local ~lo:0.0 ~hi:6.28 in
              xin <-- Sim.Value.of_float (cos phi);
              yin <-- Sim.Value.of_float (sin phi);
              zin <-- Sim.Value.of_float (Stats.Rng.uniform local ~lo:(-1.5) ~hi:1.5);
              ignore (Dsp.Cordic.rotate cor ~x:!!xin ~y:!!yin ~z:!!zin)));
    }
  in
  row "cordic-12" cordic_design "cor_x[12]";
  (* ddc, CIC registers designer-typed (wrap at Hogenauer width) *)
  let env2 = Sim.Env.create ~seed:7 () in
  let rng2 = Stats.Rng.create ~seed:31 in
  let stim =
    Array.init 3000 (fun n ->
        (0.7 *. cos (2.0 *. Float.pi *. 0.15625 *. Float.of_int n))
        +. (0.05 *. Stats.Rng.uniform rng2 ~lo:(-1.0) ~hi:1.0))
  in
  let x2 = Sim.Signal.create env2 ~dtype:(Fixpt.Dtype.make "T" ~n:10 ~f:8 ()) "x" in
  Sim.Signal.range x2 (-1.0) 1.0;
  let ddc = Dsp.Ddc.create env2 ~fcw:0.15625 ~rate:4 ~order:2 () in
  Sim.Signal.range (Dsp.Ddc.phase ddc) 0.0 1.0;
  let cic_dt =
    Fixpt.Dtype.make "T_cic" ~n:14 ~f:8 ~overflow:Fixpt.Overflow_mode.Wrap
      ~round:Fixpt.Round_mode.Floor ()
  in
  List.iter
    (fun s ->
      let n = Sim.Signal.name s in
      if String.length n > 7 && (String.sub n 0 7 = "ddc_ci_" || String.sub n 0 7 = "ddc_cq_")
      then Sim.Signal.set_dtype s cic_dt)
    (Sim.Env.signals env2);
  let ddc_design =
    {
      Refine.Flow.env = env2;
      reset = (fun () -> Sim.Env.reset env2);
      run =
        (fun () ->
          Sim.Engine.run env2 ~cycles:3000 (fun c ->
              let open Sim.Ops in
              x2 <-- Sim.Value.of_float stim.(c);
              ignore (Dsp.Ddc.step ddc !!x2)));
    }
  in
  row "ddc-frontend" ddc_design "ddc_i";
  Format.printf
    "@.every design converges in 1-2 MSB and 1-2 LSB iterations — the@.";
  Format.printf "paper's convergence claim holds across the whole library.@."

(* ======================================================================= *)
(* Simulation-engine throughput (BENCH_sim.json trajectory)                 *)
(* ======================================================================= *)

(* Raw samples/sec of the dual fixed/float simulation on the two paper
   workloads — the per-assignment hot path everything else multiplies.
   Prints one line per workload and rewrites the measured fields of
   BENCH_sim.json (run from the repo root).

   The [before] column is the recorded throughput of the pre-overhaul
   engine (list-backed registry, per-sample quantizer derivation,
   full-registry tick) on this machine — the fixed reference point of
   the hot-path overhaul. *)

let simbench_baseline = [ ("lms-equalizer", 262075.0); ("timing-recovery", 112772.0) ]

let simbench () =
  section "simbench: dual-simulation throughput (samples/sec)";
  let measure name ~samples_per_run (design : Refine.Flow.design) =
    (* warm-up run (fills channels, faults in code paths) *)
    design.Refine.Flow.reset ();
    design.Refine.Flow.run ();
    let reps = ref 0 in
    let t0 = Sys.time () in
    let elapsed () = Sys.time () -. t0 in
    while elapsed () < 1.0 do
      design.Refine.Flow.reset ();
      design.Refine.Flow.run ();
      incr reps
    done;
    let dt = elapsed () in
    let sps = Float.of_int (!reps * samples_per_run) /. dt in
    Format.printf "%-18s %7d samples x %4d reps: %12.0f samples/sec@." name
      samples_per_run !reps sps;
    (name, samples_per_run, sps)
  in
  let eq = Scenarios.equalizer () in
  let tr = Scenarios.timing () in
  let r1 = measure "lms-equalizer" ~samples_per_run:4000 eq.Scenarios.design in
  (* 2 samples/symbol in the timing-recovery front end *)
  let r2 =
    measure "timing-recovery" ~samples_per_run:8000 tr.Scenarios.t_design
  in
  let rows = [ r1; r2 ] in
  let oc = open_out "BENCH_sim.json" in
  let json =
    Printf.sprintf
      "{\n  \"benchmark\": \"sim-hot-path\",\n  \"unit\": \"samples/sec\",\n  \"workloads\": [\n%s\n  ]\n}\n"
      (String.concat ",\n"
         (List.map
            (fun (name, n, sps) ->
              let before = List.assoc name simbench_baseline in
              Printf.sprintf
                "    { \"name\": \"%s\", \"samples_per_run\": %d, \"before\": %.0f, \"after\": %.0f, \"speedup\": %.2f }"
                name n before sps (sps /. before))
            rows))
  in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_sim.json@."

(* ======================================================================= *)
(* Closed-synchronizer throughput and lock time (BENCH_sync.json)           *)
(* ======================================================================= *)

(* Samples/sec of the closed ML-TED / Gardner loops (the rows the
   [check --sync] bench guard replays, Oracle.Bench_guard.sync_rows)
   plus the acquisition transient: the first input sample after which
   the recovered symbol rate stays within 1% of 1/sps for the rest of
   the run.  The lock time is recorded for trend-watching, not
   guarded — it is a property of the loop gains, not of the engine. *)

let syncbench () =
  section "syncbench: closed-synchronizer throughput (samples/sec)";
  let lock_symbols ~ted ~m =
    let n_symbols = 2000 and sps = 2 in
    let env = Sim.Env.create ~seed:17 () in
    let rng = Stats.Rng.create ~seed:463 in
    let stimulus, sent, n_samples =
      Dsp.Channel_model.drifting_tau_pam ~rng ~n_symbols ~sps ~m ~tau0:0.3
        ~tau_drift:1e-4 ~phase:0.05 ~noise_sigma:0.01 ()
    in
    let input = Sim.Channel.of_fun "rx" stimulus in
    let output = Sim.Channel.create ~record:true "symbols" in
    let sy = Dsp.Synchronizer.create env ~ted ~m ~sps ~input ~output () in
    Dsp.Synchronizer.run sy ~samples:n_samples;
    let received = Array.of_list (Sim.Channel.recorded output) in
    (* align on the locked tail, then find the first 100-symbol window
       whose MER reaches 20 dB at that alignment — the acquisition
       transient in symbols *)
    let _, lag =
      Dsp.Pam.best_mer ~skip:(Array.length received - 400) ~sent ~received ()
    in
    let window = 100 in
    let window_mer k =
      let mer = Stats.Mer.create () in
      for i = k to k + window - 1 do
        if i < Array.length received && i + lag >= 0 && i + lag < Array.length sent
        then Stats.Mer.add mer ~reference:sent.(i + lag) ~actual:received.(i)
      done;
      Stats.Mer.db mer
    in
    let rec find k =
      if k + window > Array.length received then Array.length received
      else if window_mer k >= 20.0 then k
      else find (k + 10)
    in
    find 0
  in
  let rows = Oracle.Bench_guard.sync_rows ~budget_seconds:1.0 () in
  let locks =
    [
      ("sync-ml-pam4", lock_symbols ~ted:Dsp.Synchronizer.Ml ~m:4);
      ("sync-gardner-pam2", lock_symbols ~ted:Dsp.Synchronizer.Gardner ~m:2);
    ]
  in
  List.iter
    (fun (name, n, sps) ->
      Format.printf
        "%-18s %7d samples/run: %12.0f samples/sec  (locked after %d symbols)@."
        name n sps
        (List.assoc name locks))
    rows;
  let oc = open_out "BENCH_sync.json" in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"sync-closed-loop\",\n\
      \  \"unit\": \"samples/sec\",\n\
      \  \"workloads\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (String.concat ",\n"
         (List.map
            (fun (name, n, sps) ->
              Printf.sprintf
                "    { \"name\": \"%s\", \"samples_per_run\": %d, \
                 \"lock_symbols\": %d, \"after\": %.0f }"
                name n (List.assoc name locks) sps)
            rows))
  in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_sync.json@."

(* ======================================================================= *)
(* Compiled flat-schedule executor throughput (BENCH_compile.json)          *)
(* ======================================================================= *)

(* Lane-samples/sec of the flat-schedule executor on the extracted lms
   and timing flowgraphs, at batch 1 (single stimulus vector) and batch
   64 (structure-of-arrays batching) — measured by the same scenario
   code the [check --compiled] bench guard replays
   (Oracle.Bench_guard.compiled_rows).  The sim_baseline column is the
   dual-simulation engine's throughput on the same design from
   BENCH_sim.json ("after"), the reference the ISSUE targets multiply:
   >= 5x single-vector, >= 10x batched. *)

let compilebench () =
  section "compilebench: flat-schedule executor throughput (lane-samples/sec)";
  let sim_baselines =
    let fallback =
      [ ("lms-equalizer", 576687.0); ("timing-recovery", 298569.0) ]
    in
    if Sys.file_exists "BENCH_sim.json" then
      match
        Oracle.Bench_guard.parse_baselines
          (In_channel.with_open_bin "BENCH_sim.json" In_channel.input_all)
      with
      | [] -> fallback
      | parsed -> parsed
    else fallback
  in
  let sim_of row =
    let wl =
      if String.length row >= 3 && String.sub row 0 3 = "lms" then
        "lms-equalizer"
      else "timing-recovery"
    in
    List.assoc wl sim_baselines
  in
  let rows = Oracle.Bench_guard.compiled_rows ~budget_seconds:1.0 () in
  List.iter
    (fun (name, steps, sps) ->
      Format.printf
        "%-20s %7d steps/run: %12.0f lane-samples/sec  (%.1fx dual-sim)@."
        name steps sps
        (sps /. sim_of name))
    rows;
  let oc = open_out "BENCH_compile.json" in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"compile-flat-schedule\",\n\
      \  \"unit\": \"lane-samples/sec\",\n\
      \  \"workloads\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (String.concat ",\n"
         (List.map
            (fun (name, steps, sps) ->
              let sim = sim_of name in
              Printf.sprintf
                "    { \"name\": \"%s\", \"samples_per_run\": %d, \
                 \"sim_baseline\": %.0f, \"after\": %.0f, \
                 \"speedup_vs_sim\": %.2f }"
                name steps sim sps (sps /. sim))
            rows))
  in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_compile.json@."

(* ======================================================================= *)
(* Verification-engine throughput (BENCH_verify.json)                       *)
(* ======================================================================= *)

(* Transitions/sec of the bit-level verification oracle on the two
   guard scenarios (Oracle.Bench_guard.verify_rows): the exhaustive
   biquad no-overflow proof and the bounded lms limit-cycle closure.
   One repetition is a whole verification run — graph rebuild, compile,
   state-space search — so "after" is honest end-to-end proof
   throughput, the number [check --verify]'s bench guard regresses
   against. *)

let verifybench () =
  section "verifybench: verification-oracle throughput (transitions/sec)";
  let rows = Oracle.Bench_guard.verify_rows ~budget_seconds:1.0 () in
  List.iter
    (fun (name, transitions, tps) ->
      Format.printf
        "%-22s %7d transitions/run: %12.0f transitions/sec  (%.3f ms/proof)@."
        name transitions tps
        (float_of_int transitions /. tps *. 1e3))
    rows;
  let oc = open_out "BENCH_verify.json" in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"verify-state-space\",\n\
      \  \"unit\": \"transitions/sec\",\n\
      \  \"scenarios\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (String.concat ",\n"
         (List.map
            (fun (name, transitions, tps) ->
              Printf.sprintf
                "    { \"name\": \"%s\", \"transitions_per_run\": %d, \
                 \"proof_ms\": %.3f, \"after\": %.0f }"
                name transitions
                (float_of_int transitions /. tps *. 1e3)
                tps)
            rows))
  in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_verify.json@."

(* ======================================================================= *)
(* Parallel sweep scaling (BENCH_sweep.json)                                *)
(* ======================================================================= *)

(* Wall-clock scaling of the domain-parallel exploration pool on a grid
   sweep — one candidate evaluation is a full monitored simulation, so
   this measures real end-to-end speedup, not kernel time.  The target
   is ≥3× at 4 cores; the JSON records cores_available because a
   core-starved container cannot exhibit the speedup (jobs > cores just
   time-slices one core) and the honest measurement is still the right
   regression reference for when it runs on real silicon. *)

let sweepbench () =
  section "sweepbench: parallel sweep wall-clock scaling";
  let sweep ~jobs =
    let workload = Sweep.Workload.fir ~n:2048 () in
    let generator =
      Sweep.Generator.grid ~specs:workload.Sweep.Workload.specs ~f_min:2
        ~f_max:10 ~seeds:[ 0; 1; 2; 3 ]
    in
    let t0 = Unix.gettimeofday () in
    let report = Sweep.Pool.run ~jobs ~workload ~generator () in
    let dt = Unix.gettimeofday () -. t0 in
    (List.length report.Sweep.Report.entries, dt)
  in
  let cores = Domain.recommended_domain_count () in
  let par_jobs = min 4 (max 2 cores) in
  (* warm-up: fault in all code paths before timing *)
  ignore (sweep ~jobs:1);
  let candidates, t_seq = sweep ~jobs:1 in
  let _, t_par = sweep ~jobs:par_jobs in
  let speedup = t_seq /. t_par in
  Format.printf "%d candidates: jobs=1 %.3f s, jobs=%d %.3f s -> %.2fx (%d core%s available)@."
    candidates t_seq par_jobs t_par speedup cores
    (if cores = 1 then "" else "s");
  let oc = open_out "BENCH_sweep.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"sweep-scaling\",\n\
    \  \"workload\": \"fir\",\n\
    \  \"strategy\": \"grid\",\n\
    \  \"candidates\": %d,\n\
    \  \"cores_available\": %d,\n\
    \  \"seconds_jobs1\": %.4f,\n\
    \  \"seconds_jobs%d\": %.4f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"target\": \"3x at 4 cores (unattainable when cores_available < 4)\"\n\
     }\n"
    candidates cores t_seq par_jobs t_par speedup;
  close_out oc;
  Format.printf "wrote BENCH_sweep.json@."

(* ======================================================================= *)
(* Evaluation cache effectiveness (BENCH_serve.json)                        *)
(* ======================================================================= *)

(* Cold vs warm wall-clock of an identical re-sweep through the
   content-addressed evaluation cache: the warm pass must answer ≥90%
   of candidate evaluations from the persisted entries and come back
   ≥5× faster — a hit replaces compile + n-cycle run with one
   extraction cycle, a hash and a decode.  Unlike sweepbench's scaling
   target this is core-count independent, so it holds even in a
   single-core container. *)

let servebench () =
  section "servebench: content-addressed evaluation cache";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fxservebench-%d" (Unix.getpid ()))
  in
  let sweep ~cache =
    let workload = Sweep.Workload.fir ~n:2048 () in
    let generator =
      Sweep.Generator.grid ~specs:workload.Sweep.Workload.specs ~f_min:2
        ~f_max:10 ~seeds:[ 0; 1; 2; 3 ]
    in
    let t0 = Unix.gettimeofday () in
    let report = Sweep.Pool.run ~jobs:1 ?cache ~workload ~generator () in
    let dt = Unix.gettimeofday () -. t0 in
    (report, dt)
  in
  (* warm-up without the cache: fault in all code paths before timing *)
  ignore (sweep ~cache:None);
  let cold_cache = Serve.Cache.create ~dir () in
  let cold_report, t_cold =
    sweep ~cache:(Some (Serve.Codec.eval_cache cold_cache))
  in
  (* a fresh cache value over the same directory: warm hits come from
     the persisted entries, as in a separate process *)
  let warm_cache = Serve.Cache.create ~dir () in
  let warm_report, t_warm =
    sweep ~cache:(Some (Serve.Codec.eval_cache warm_cache))
  in
  let s = Serve.Cache.stats warm_cache in
  let looked = s.Serve.Cache.hits + s.Serve.Cache.misses in
  let hit_rate =
    if looked = 0 then 0.0
    else float_of_int s.Serve.Cache.hits /. float_of_int looked
  in
  let speedup = t_cold /. t_warm in
  let candidates = List.length cold_report.Sweep.Report.entries in
  let identical =
    Sweep.Report.to_json cold_report = Sweep.Report.to_json warm_report
  in
  Format.printf
    "%d candidates: cold %.3f s, warm %.3f s -> %.1fx, hit rate %.0f%%, \
     reports %s@."
    candidates t_cold t_warm speedup (100.0 *. hit_rate)
    (if identical then "byte-identical" else "DIVERGED");
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"serve-cache\",\n\
    \  \"workload\": \"fir\",\n\
    \  \"strategy\": \"grid\",\n\
    \  \"candidates\": %d,\n\
    \  \"seconds_cold\": %.4f,\n\
    \  \"seconds_warm\": %.4f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"hits\": %d,\n\
    \  \"misses\": %d,\n\
    \  \"hit_rate\": %.4f,\n\
    \  \"reports_identical\": %b,\n\
    \  \"target\": \"hit_rate >= 0.9 and speedup >= 5x on an identical \
     re-sweep\"\n\
     }\n"
    candidates t_cold t_warm speedup s.Serve.Cache.hits s.Serve.Cache.misses
    hit_rate identical;
  close_out oc;
  Format.printf "wrote BENCH_serve.json@."

(* ======================================================================= *)
(* Observability overhead (BENCH_trace.json)                                *)
(* ======================================================================= *)

(* Throughput of the dual simulation with the null sink (tracing
   compiled in but disabled — the default everyone pays) against the
   counting sink (per-signal event counters live).  The null-sink
   number is the one the fig5 bench guard holds to the BENCH_sim.json
   budget: disabled tracing must stay one pointer compare per
   assignment. *)

let tracebench () =
  section "tracebench: event-sink overhead (samples/sec)";
  let measure name ~samples_per_run ~sink_for (design : Refine.Flow.design) =
    let env = design.Refine.Flow.env in
    (match sink_for () with
    | Some sink -> Sim.Env.set_sink env sink
    | None -> Sim.Env.clear_sink env);
    design.Refine.Flow.reset ();
    design.Refine.Flow.run ();
    let reps = ref 0 in
    let t0 = Sys.time () in
    let elapsed () = Sys.time () -. t0 in
    while elapsed () < 1.0 do
      design.Refine.Flow.reset ();
      design.Refine.Flow.run ();
      incr reps
    done;
    let dt = elapsed () in
    Sim.Env.clear_sink env;
    let sps = Float.of_int (!reps * samples_per_run) /. dt in
    Format.printf "%-18s %-9s %4d reps: %12.0f samples/sec@." name
      (match sink_for () with Some _ -> "counting" | None -> "null")
      !reps sps;
    sps
  in
  let rows =
    List.map
      (fun (name, samples_per_run, design) ->
        let null_sps = measure name ~samples_per_run ~sink_for:(fun () -> None) design in
        let counting_sps =
          measure name ~samples_per_run
            ~sink_for:(fun () -> Some (Trace.Counters.sink (Trace.Counters.create ())))
            design
        in
        (name, null_sps, counting_sps))
      [
        ( "lms-equalizer",
          4000,
          (Scenarios.equalizer ()).Scenarios.design );
        ( "timing-recovery",
          8000,
          (Scenarios.timing ()).Scenarios.t_design );
      ]
  in
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"trace-sink-overhead\",\n  \"unit\": \"samples/sec\",\n  \"workloads\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (name, null_sps, counting_sps) ->
            Printf.sprintf
              "    { \"name\": \"%s\", \"null_sink\": %.0f, \"counting_sink\": %.0f, \"overhead\": %.3f }"
              name null_sps counting_sps (null_sps /. counting_sps))
          rows));
  close_out oc;
  Format.printf "wrote BENCH_trace.json@."

(* ======================================================================= *)
(* Bechamel timing benchmarks — one per experiment                          *)
(* ======================================================================= *)

let bechamel_run () =
  section "Bechamel: time per experiment regeneration (reduced workloads)";
  let open Bechamel in
  let quick_eq () =
    let s = Scenarios.equalizer ~n:400 () in
    ignore (Refine.Flow.refine s.Scenarios.design)
  in
  let quick_timing () =
    let s = Scenarios.timing ~n_symbols:400 () in
    ignore (Refine.Flow.refine s.Scenarios.t_design)
  in
  let quick_fir_flow () =
    let d = Scenarios.fir ~n:400 () in
    ignore (Refine.Flow.refine d)
  in
  let quick_analytical () =
    let g = Dsp.Lms_equalizer.to_sfg ~b_range:(-0.2, 0.2) () in
    let ranges = Sfg.Range_analysis.run g in
    ignore (Sfg.Noise_analysis.run g ~ranges)
  in
  let quick_baseline_sim () =
    let d = Scenarios.fir ~n:200 () in
    ignore
      (Refine.Baseline_sim.optimize ~design:d ~signals:[ "v[3]"; "out" ]
         ~probe:"out" ~target_db:30.0 ())
  in
  let quick_vhdl () =
    let g = Sfg.Graph.create () in
    let _, y = Dsp.Fir.to_sfg g ~coefs:Scenarios.fir_coefs ~input_range:(-1.2, 1.2) in
    Sfg.Graph.mark_output g "y" y;
    ignore
      (Vhdl.Emit.entity
         (Vhdl.Of_sfg.entity ~name:"fir"
            ~formats:(Vhdl.Of_sfg.uniform_formats ~n:12 ~f:8)
            g))
  in
  let tests =
    [
      Test.make ~name:"table1+2: equalizer flow (400 sym)" (Staged.stage quick_eq);
      Test.make ~name:"fig5: timing-recovery flow (400 sym)"
        (Staged.stage quick_timing);
      Test.make ~name:"quickstart: FIR flow (400 sym)"
        (Staged.stage quick_fir_flow);
      Test.make ~name:"analytical: range+noise fixpoint"
        (Staged.stage quick_analytical);
      Test.make ~name:"compare: simulation-based baseline (200 sym)"
        (Staged.stage quick_baseline_sim);
      Test.make ~name:"backend: SFG -> VHDL emission" (Staged.stage quick_vhdl);
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      List.iter
        (fun (name, raw) ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Format.printf "%-46s %12.3f ms/run@." name (ns /. 1e6)
          | _ -> Format.printf "%-46s (no estimate)@." name)
        (List.map
           (fun (name, b) -> (name, b))
           (Hashtbl.fold
              (fun k v acc -> (k, v) :: acc)
              (Benchmark.all cfg [ instance ] test)
              [])))
    tests

(* ======================================================================= *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("sqnr", sqnr);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("msb-threeway", msb_threeway);
    ("compare", compare);
    ("ablate-klsb", ablate_klsb);
    ("ablate-error", ablate_error);
    ("ablate-steering", ablate_steering);
    ("ablate-adaptive-lsb", ablate_adaptive_lsb);
    ("ablate-fft-scaling", ablate_fft_scaling);
    ("ablate-widen", ablate_widen);
    ("summary", summary);
    ("simbench", simbench);
    ("syncbench", syncbench);
    ("compilebench", compilebench);
    ("verifybench", verifybench);
    ("sweepbench", sweepbench);
    ("servebench", servebench);
    ("tracebench", tracebench);
    ("bench", bechamel_run);
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "list" :: _ ->
      List.iter (fun (n, _) -> print_endline n) experiments
  | _ :: (_ :: _ as picked) ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Format.printf "unknown experiment %S (try 'list')@." name;
              exit 1)
        picked
  | _ -> List.iter (fun (_, f) -> f ()) experiments
