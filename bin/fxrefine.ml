(* fxrefine — command-line front end to the fixed-point refinement
   library.

   Subcommands:
     equalizer  — refine the paper's LMS equalizer (Fig. 1, Tables 1-2)
     timing     — refine the PAM timing-recovery loop (Fig. 5, §6.1)
     timing-ml  — refine the closed ML-TED synchronizer (4-PAM,
                  drifting tau, MER/EVM scoring)
     cordic     — refine a CORDIC rotator
     quantize   — quantize one value through a dtype (scriptable helper)
     sfg        — analyze a built-in flowgraph analytically, export DOT
     sweep      — parallel wordlength/stimuli exploration (multicore)
     faultsim   — run a sweep under a seeded fault-injection plan
     trace      — run one conformance workload under full tracing
     check      — the conformance oracle (--faults adds the fault gate,
                  --compiled the compiled-executor gate, --verify the
                  verification-oracle gate, --serve the cache/daemon
                  gate)
     compile    — lower workload flowgraphs to the batched flat-schedule
                  executor; equality spot check + throughput
     verify     — prove/refute no-overflow and no-limit-cycle on a
                  design's flowgraph by exhaustive/bounded bit-level
                  search; counterexamples as hex-float stimuli
     serve      — refinement daemon: sweep jobs over a Unix socket,
                  all sharing one content-addressed evaluation cache
     submit     — client for a running serve daemon (sweep/ping/
                  stats/shutdown)

   Each refinement subcommand prints the paper-style MSB/LSB tables and
   a flow summary; options control workload size, k_LSB and seeds so the
   tool doubles as the experiment driver.  The refinement and sweep
   subcommands accept --trace/--counters to capture a Chrome trace_event
   JSON and per-signal event counters of the run. *)

open Fixrefine
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

(* --- shared report printing ------------------------------------------- *)

let print_flow_result env (result : Refine.Flow.result) =
  Format.printf "=== MSB analysis ===@.";
  Refine.Report.print_msb env;
  Format.printf "@.=== LSB analysis ===@.";
  Refine.Report.print_lsb env;
  Format.printf "@.=== flow ===@.";
  List.iter
    (fun it -> Format.printf "%a@." Refine.Flow.pp_iteration it)
    result.Refine.Flow.iterations;
  Format.printf "%s@."
    (Refine.Report.summary env result.Refine.Flow.msb_decisions
       result.Refine.Flow.lsb_decisions);
  match
    (result.Refine.Flow.sqnr_before_db, result.Refine.Flow.sqnr_after_db)
  with
  | Some b, Some a -> Format.printf "SQNR: %.1f dB -> %.1f dB@." b a
  | _ -> ()

(* --- common options ---------------------------------------------------- *)

let symbols_t =
  Arg.(value & opt int 4000 & info [ "n"; "symbols" ] ~doc:"Workload size.")

let seed_t = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Stimulus seed.")

let k_lsb_t =
  Arg.(
    value & opt float 1.0
    & info [ "k-lsb" ] ~doc:"The \\$(i,k_LSB) constant of the sigma rule.")

let verbose_t = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log actions.")

let trace_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the run to \\$(docv) (open in \
           chrome://tracing or Perfetto).")

let counters_file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "counters" ] ~docv:"FILE"
        ~doc:"Write per-signal event counters JSON to \\$(docv).")

let write_text path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

(* Observe one refinement run: [--counters] attaches a counting sink to
   the design's environment for the whole flow (every monitored run
   contributes), [--trace] collects wall-clock phase/run spans. *)
let with_observability ~trace_file ~counters_file ~label env f =
  let ctr =
    match counters_file with
    | Some _ ->
        let c = Trace.Counters.create () in
        Sim.Env.set_sink env (Trace.Counters.sink c);
        Some c
    | None -> None
  in
  if trace_file <> None then Trace.Spans.set_enabled true;
  let r = f () in
  Sim.Env.clear_sink env;
  (match (counters_file, ctr) with
  | Some path, Some c ->
      write_text path
        (Trace.Counters.to_json
           ~meta:[ ("workload", Trace.Json.string_lit label) ]
           c);
      Format.eprintf "wrote counters to %s@." path
  | _ -> ());
  (match trace_file with
  | Some path ->
      Trace.Chrome.write_file ~path ~spans:(Trace.Spans.drain ()) ();
      Trace.Spans.set_enabled false;
      Format.eprintf "wrote trace to %s@." path
  | None -> ());
  r

let config_of k_lsb =
  {
    Refine.Flow.default_config with
    Refine.Flow.lsb = { Refine.Lsb_rules.default_config with k_lsb };
  }

(* --- equalizer --------------------------------------------------------- *)

let run_equalizer n seed k_lsb trace_file counters_file verbose =
  setup_logs verbose;
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed in
  let stimulus, sent = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:n () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "decisions" in
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:7 ~f:5 () in
  let eq = Dsp.Lms_equalizer.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Lms_equalizer.run eq ~cycles:n);
    }
  in
  let result =
    with_observability ~trace_file ~counters_file ~label:"equalizer" env
      (fun () ->
        Refine.Flow.refine ~config:(config_of k_lsb) ~sqnr_signal:"v[3]"
          design)
  in
  print_flow_result env result;
  let decided = Array.of_list (Sim.Channel.recorded output) in
  Format.printf "SER: %.4f@." (Dsp.Pam.best_ser ~skip:100 ~sent ~decided ())

let equalizer_cmd =
  Cmd.v
    (Cmd.info "equalizer" ~doc:"Refine the LMS equalizer (Fig. 1).")
    Term.(
      const run_equalizer $ symbols_t $ seed_t $ k_lsb_t $ trace_file_t
      $ counters_file_t $ verbose_t)

(* --- timing recovery --------------------------------------------------- *)

let run_timing n seed k_lsb trace_file counters_file verbose =
  setup_logs verbose;
  let env = Sim.Env.create ~seed:5 () in
  let rng = Stats.Rng.create ~seed in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.timing_offset_pam ~rng ~n_symbols:n ~tau:0.3 ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "symbols" in
  let x_dtype = Fixpt.Dtype.make "T_input" ~n:10 ~f:8 () in
  let tr = Dsp.Timing_recovery.create env ~x_dtype ~input ~output () in
  Sim.Signal.range (Dsp.Timing_recovery.input_signal tr) (-1.6) 1.6;
  Sim.Signal.range (Dsp.Nco.mu (Dsp.Timing_recovery.nco tr)) 0.0 1.0;
  Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
  Sim.Signal.range (Sim.Env.find_exn env "ted_err") (-4.0) 4.0;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output);
      run = (fun () -> Dsp.Timing_recovery.run tr ~samples:n_samples);
    }
  in
  let config =
    { (config_of k_lsb) with Refine.Flow.auto_error_lsb = -8 }
  in
  let result =
    with_observability ~trace_file ~counters_file ~label:"timing" env
      (fun () -> Refine.Flow.refine ~config ~sqnr_signal:"out" design)
  in
  print_flow_result env result;
  let decided = Array.of_list (Sim.Channel.recorded output) in
  Format.printf "SER after lock: %.4f@."
    (Dsp.Pam.best_ser ~skip:500 ~sent ~decided ())

let timing_cmd =
  Cmd.v
    (Cmd.info "timing" ~doc:"Refine the PAM timing-recovery loop (Fig. 5).")
    Term.(
      const run_timing $ symbols_t $ seed_t $ k_lsb_t $ trace_file_t
      $ counters_file_t $ verbose_t)

(* --- timing-ml: the closed ML-TED synchronizer ------------------------- *)

let run_timing_ml n seed k_lsb trace_file counters_file verbose =
  setup_logs verbose;
  let env = Sim.Env.create ~seed:17 () in
  let rng = Stats.Rng.create ~seed in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.drifting_tau_pam ~rng ~n_symbols:n ~m:4 ~tau0:0.3
      ~tau_drift:1e-4 ~phase:0.05 ~noise_sigma:0.01 ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "symbols" in
  let decisions = Sim.Channel.create ~record:true "decisions" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:10 ~f:8
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let sy =
    Dsp.Synchronizer.create env ~ted:Dsp.Synchronizer.Ml ~m:4 ~x_dtype ~input
      ~output ~decisions ()
  in
  Sim.Signal.range (Dsp.Synchronizer.input_signal sy) (-1.6) 1.6;
  Sim.Signal.range (Dsp.Nco.mu (Dsp.Synchronizer.nco sy)) 0.0 1.0;
  Sim.Signal.range (Sim.Env.find_exn env "lf_lferr") (-0.25) 0.25;
  Sim.Signal.range (Sim.Env.find_exn env "mlted_err") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_out") (-2.0) 2.0;
  Sim.Signal.range (Sim.Env.find_exn env "ip_dout") (-4.0) 4.0;
  Sim.Signal.range (Sim.Env.find_exn env "out") (-2.0) 2.0;
  let design =
    {
      Refine.Flow.env;
      reset =
        (fun () ->
          Sim.Env.reset env;
          Sim.Channel.clear input;
          Sim.Channel.clear output;
          Sim.Channel.clear decisions);
      run = (fun () -> Dsp.Synchronizer.run sy ~samples:n_samples);
    }
  in
  (* float reference pass: lock quality before any quantization *)
  design.Refine.Flow.reset ();
  design.Refine.Flow.run ();
  let skip = min 300 (n / 2) in
  let mer_now () =
    let received = Array.of_list (Sim.Channel.recorded output) in
    fst (Dsp.Pam.best_mer ~skip ~sent ~received ())
  in
  let float_mer = mer_now () in
  Format.printf
    "float lock: MER %.2f dB, strobe-rate error %.4f@." float_mer
    (Dsp.Synchronizer.strobe_rate_error sy);
  (* §6.1's knowledge-based overrule: the NCO phase register's error
     monitoring is meaningless under decision-steered feedback, so the
     designer fixes its error model with error() before refinement *)
  let auto_error_lsb = -8 in
  let h = Refine.Lsb_rules.error_halfwidth_of_lsb auto_error_lsb in
  Sim.Signal.error (Dsp.Nco.phase (Dsp.Synchronizer.nco sy)) h;
  let config =
    {
      (config_of k_lsb) with
      Refine.Flow.auto_error_lsb;
      error_overrides = [ ("nco_eta", h) ];
    }
  in
  let result =
    with_observability ~trace_file ~counters_file ~label:"timing-ml" env
      (fun () -> Refine.Flow.refine ~config ~sqnr_signal:"out" design)
  in
  print_flow_result env result;
  design.Refine.Flow.reset ();
  design.Refine.Flow.run ();
  let refined_mer = mer_now () in
  let evm =
    if Float.is_finite refined_mer then 10.0 ** (-.refined_mer /. 20.0) *. 100.0
    else 0.0
  in
  Format.printf
    "refined lock: MER %.2f dB (EVM %.2f%%, delta %.2f dB), strobe-rate \
     error %.4f@."
    refined_mer evm (float_mer -. refined_mer)
    (Dsp.Synchronizer.strobe_rate_error sy);
  let decided = Array.of_list (Sim.Channel.recorded decisions) in
  Format.printf "SER after lock: %.4f@."
    (Dsp.Pam.best_ser ~skip ~m:4 ~sent ~decided ())

let timing_ml_cmd =
  Cmd.v
    (Cmd.info "timing-ml"
       ~doc:
         "Refine the closed ML-TED symbol-timing synchronizer (4-PAM, \
          drifting tau), with the \\$(b,\\\\S6.1) error() overrule on the \
          NCO phase; reports MER/EVM and strobe-rate lock besides SQNR.")
    Term.(
      const run_timing_ml $ symbols_t $ seed_t $ k_lsb_t $ trace_file_t
      $ counters_file_t $ verbose_t)

(* --- cordic ------------------------------------------------------------ *)

let run_cordic n seed k_lsb trace_file counters_file verbose =
  setup_logs verbose;
  let env = Sim.Env.create ~seed:31 () in
  let rng = Stats.Rng.create ~seed in
  let iters = 12 in
  let cordic = Dsp.Cordic.create env ~iters () in
  let in_dtype = Fixpt.Dtype.make "T_in" ~n:12 ~f:10 () in
  let xin = Sim.Signal.create env ~dtype:in_dtype "xin" in
  let yin = Sim.Signal.create env ~dtype:in_dtype "yin" in
  let zin = Sim.Signal.create env ~dtype:in_dtype "zin" in
  Sim.Signal.range xin (-1.0) 1.0;
  Sim.Signal.range yin (-1.0) 1.0;
  Sim.Signal.range zin (-1.6) 1.6;
  let design =
    {
      Refine.Flow.env;
      reset = (fun () -> Sim.Env.reset env);
      run =
        (fun () ->
          let local = Stats.Rng.copy rng in
          Sim.Engine.run env ~cycles:n (fun _ ->
              let open Sim.Ops in
              let phi = Stats.Rng.uniform local ~lo:0.0 ~hi:6.28318 in
              xin <-- Sim.Value.of_float (cos phi);
              yin <-- Sim.Value.of_float (sin phi);
              zin
              <-- Sim.Value.of_float (Stats.Rng.uniform local ~lo:(-1.5) ~hi:1.5);
              ignore (Dsp.Cordic.rotate cordic ~x:!!xin ~y:!!yin ~z:!!zin)));
    }
  in
  let probe = Printf.sprintf "cor_x[%d]" iters in
  let result =
    with_observability ~trace_file ~counters_file ~label:"cordic" env
      (fun () ->
        Refine.Flow.refine ~config:(config_of k_lsb) ~sqnr_signal:probe
          design)
  in
  print_flow_result env result

let cordic_cmd =
  Cmd.v
    (Cmd.info "cordic" ~doc:"Refine a 12-stage CORDIC rotator.")
    Term.(
      const run_cordic $ symbols_t $ seed_t $ k_lsb_t $ trace_file_t
      $ counters_file_t $ verbose_t)

(* --- quantize ----------------------------------------------------------- *)

let run_quantize value type_str n f sat floor_mode =
  let dt =
    match type_str with
    | Some s -> (
        match Fixpt.Dtype.of_string s with
        | Some dt -> dt
        | None ->
            Format.eprintf "cannot parse type %S (expected name<n,f,...>)@." s;
            exit 1)
    | None ->
        Fixpt.Dtype.make "cli" ~n ~f
          ~overflow:
            (if sat then Fixpt.Overflow_mode.Saturate
             else Fixpt.Overflow_mode.Wrap)
          ~round:
            (if floor_mode then Fixpt.Round_mode.Floor
             else Fixpt.Round_mode.Round)
          ()
  in
  let out = Fixpt.Quantize.quantize dt value in
  Format.printf "%.10g -> %.10g through %s (err %.3g%s)@." value
    out.Fixpt.Quantize.value (Fixpt.Dtype.to_string dt)
    (out.Fixpt.Quantize.value -. value)
    (match out.Fixpt.Quantize.overflow with
    | Some _ -> ", overflowed"
    | None -> "")

let quantize_cmd =
  let value_t =
    Arg.(required & pos 0 (some float) None & info [] ~docv:"VALUE")
  in
  let type_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "type" ] ~doc:"Full dtype, e.g. 'acc<10,8,tc,sat,fl>'.")
  in
  let n_t = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Total bits.") in
  let f_t = Arg.(value & opt int 6 & info [ "f" ] ~doc:"Fractional bits.") in
  let sat_t = Arg.(value & flag & info [ "sat" ] ~doc:"Saturate on overflow.") in
  let floor_t = Arg.(value & flag & info [ "floor" ] ~doc:"Floor rounding.") in
  Cmd.v
    (Cmd.info "quantize" ~doc:"Quantize a value through a fixed-point type.")
    Term.(const run_quantize $ value_t $ type_t $ n_t $ f_t $ sat_t $ floor_t)

(* --- sweep: parallel wordlength exploration ----------------------------- *)

let run_sweep workload_name strategy jobs budget f_min f_max n_seeds
    target_db cache_dir checkpoint_dir resume json trace_file counters_file
    verbose =
  setup_logs verbose;
  if resume && checkpoint_dir = None then begin
    Format.eprintf "--resume requires --checkpoint DIR@.";
    exit 1
  end;
  if counters_file <> None && checkpoint_dir <> None then begin
    Format.eprintf
      "--counters cannot be combined with --checkpoint (counters do not \
       round-trip through the wave journal)@.";
    exit 1
  end;
  let workload =
    match Sweep.Workload.find workload_name with
    | Some w -> w
    | None ->
        Format.eprintf "unknown workload %S (available: %s)@." workload_name
          (String.concat ", "
             (List.map
                (fun (w : Sweep.Workload.t) -> w.Sweep.Workload.name)
                (Sweep.Workload.all ())));
        exit 1
  in
  if f_min > f_max then begin
    Format.eprintf "invalid range: --f-min %d > --f-max %d@." f_min f_max;
    exit 1
  end;
  if n_seeds < 1 then begin
    Format.eprintf "--seeds must be at least 1@.";
    exit 1
  end;
  let specs = workload.Sweep.Workload.specs in
  let seeds = List.init n_seeds Fun.id in
  let generator =
    match strategy with
    | "grid" -> Sweep.Generator.grid ~specs ~f_min ~f_max ~seeds
    | "bisect" -> Sweep.Generator.bisect ~specs ~f_min ~f_max ~target_db ~seeds
    | "pareto" -> Sweep.Generator.pareto ~specs ~f_min ~f_max ~seeds ()
    | s ->
        Format.eprintf "unknown strategy %S (grid|bisect|pareto)@." s;
        exit 1
  in
  if trace_file <> None then Trace.Spans.set_enabled true;
  (* a persistent cache makes identical re-sweeps answer from disk; the
     report stays byte-identical either way (the serve gate's contract) *)
  let store = Option.map (fun dir -> Serve.Cache.create ~dir ()) cache_dir in
  let cache = Option.map Serve.Codec.eval_cache store in
  (* the wave journal is keyed by everything that determines the report
     byte-for-byte; jobs is excluded (scheduling only), so a resume may
     change --jobs freely.  The daemon derives the same key for its
     journaled jobs. *)
  let checkpoint =
    Option.map
      (fun dir ->
        let key =
          Sweep.Checkpoint.sweep_key ~workload:workload_name ~strategy
            ~context:(Serve.Codec.context ())
            [
              ("f_min", string_of_int f_min);
              ("f_max", string_of_int f_max);
              ("seeds", string_of_int n_seeds);
              ( "budget",
                match budget with
                | Some b -> string_of_int b
                | None -> "none" );
              ("target_db", Printf.sprintf "%h" target_db);
            ]
        in
        Sweep.Checkpoint.create ~resume ~dir ~key ())
      checkpoint_dir
  in
  let t0 = Unix.gettimeofday () in
  let report =
    Sweep.Pool.run ~jobs ?budget ?cache ?checkpoint
      ~counters:(counters_file <> None)
      ~workload ~generator ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  if json then print_string (Sweep.Report.to_json report)
  else Format.printf "%a" Sweep.Report.pp report;
  (match counters_file with
  | Some path ->
      write_text path (Sweep.Report.counters_json report);
      Format.eprintf "wrote counters to %s@." path
  | None -> ());
  (match trace_file with
  | Some path ->
      Trace.Chrome.write_file ~path ~spans:(Trace.Spans.drain ()) ();
      Trace.Spans.set_enabled false;
      Format.eprintf "wrote trace to %s@." path
  | None -> ());
  (* timing goes to stderr, never into the (deterministic) report *)
  Format.eprintf "sweep: %d candidates in %.3f s (jobs=%d)@."
    (List.length report.Sweep.Report.entries)
    dt jobs;
  (match checkpoint with
  | Some cp ->
      let waves, cands = Sweep.Checkpoint.replayed cp in
      if resume then
        Format.eprintf
          "checkpoint: replayed %d wave(s) (%d candidates) from %s@." waves
          cands (Sweep.Checkpoint.dir cp)
      else
        Format.eprintf "checkpoint: journaled %d wave(s) to %s@."
          (Sweep.Checkpoint.waves cp)
          (Sweep.Checkpoint.dir cp)
  | None -> ());
  match store with
  | Some c ->
      let s = Serve.Cache.stats c in
      let looked = s.Serve.Cache.hits + s.Serve.Cache.misses in
      Format.eprintf "cache: %d hits, %d misses (%.0f%% hit rate), %d entries@."
        s.Serve.Cache.hits s.Serve.Cache.misses
        (if looked = 0 then 0.0
         else 100.0 *. float_of_int s.Serve.Cache.hits /. float_of_int looked)
        s.Serve.Cache.entries
  | None -> ()

let sweep_cmd =
  let workload_t =
    Arg.(
      value & opt string "fir"
      & info [ "workload" ] ~doc:"Built-in workload to explore.")
  in
  let strategy_t =
    Arg.(
      value & opt string "grid"
      & info [ "strategy" ]
          ~doc:"Search strategy: \\$(b,grid), \\$(b,bisect) or \\$(b,pareto).")
  in
  let jobs_t =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~doc:"Worker domains (1 = sequential).")
  in
  let budget_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~doc:"Cap on the number of evaluated candidates.")
  in
  let f_min_t =
    Arg.(value & opt int 2 & info [ "f-min" ] ~doc:"Smallest fractional width.")
  in
  let f_max_t =
    Arg.(value & opt int 10 & info [ "f-max" ] ~doc:"Largest fractional width.")
  in
  let seeds_t =
    Arg.(
      value & opt int 2
      & info [ "seeds" ] ~doc:"Stimulus seeds per wordlength (0..N-1).")
  in
  let target_t =
    Arg.(
      value & opt float 40.0
      & info [ "target-db" ] ~doc:"SQNR target for \\$(b,bisect).")
  in
  let json_t =
    Arg.(value & flag & info [ "json" ] ~doc:"Canonical JSON report.")
  in
  let cache_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ]
          ~doc:
            "Content-addressed evaluation cache directory: compiled \
             candidate evaluations are looked up before computing and \
             persisted after, so an identical re-sweep answers from disk. \
             The report is byte-identical with or without the cache; a \
             hit-rate line goes to stderr.")
  in
  let checkpoint_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:
            "Crash-safety journal directory: every completed wave is \
             recorded durably (atomic rename + fsync) under a key derived \
             from the sweep parameters, so a killed sweep can be resumed \
             with \\$(b,--resume) to a byte-identical report. Without \
             \\$(b,--resume), stale records under the same key are cleared \
             first.")
  in
  let resume_t =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay waves already journaled under \\$(b,--checkpoint) \
             instead of re-evaluating them; the report is byte-identical \
             to an uninterrupted run, at any \\$(b,--jobs).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Explore wordlength/stimulus candidates in parallel (OCaml \
          multicore); deterministic for any --jobs.")
    Term.(
      const run_sweep $ workload_t $ strategy_t $ jobs_t $ budget_t $ f_min_t
      $ f_max_t $ seeds_t $ target_t $ cache_dir_t $ checkpoint_t $ resume_t
      $ json_t $ trace_file_t $ counters_file_t $ verbose_t)

(* --- faultsim: a sweep under seeded fault injection --------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_faultsim workload_name strategy jobs f_min f_max n_seeds plan_file
    fault_seed nan_rate inf_rate denormal_rate extreme_rate extreme_mag
    bitflip_rate overflow_rate starve_after targets on_overflow emit_plan
    json counters_file verbose =
  setup_logs verbose;
  let plan =
    match plan_file with
    | Some path -> (
        match Fault.Plan.of_json (read_file path) with
        | Ok p -> p
        | Error e ->
            Format.eprintf "cannot parse fault plan %s: %s@." path e;
            exit 1)
    | None -> (
        match Fault.Plan.policy_override_of_string on_overflow with
        | Error e ->
            Format.eprintf "--on-overflow: %s@." e;
            exit 1
        | Ok on_overflow ->
            Fault.Plan.make ~seed:fault_seed ~nan_rate ~inf_rate
              ~denormal_rate ~extreme_rate ~extreme_mag ~bitflip_rate
              ~force_overflow_rate:overflow_rate ?starve_after ~targets
              ~on_overflow ())
  in
  if emit_plan then print_string (Fault.Plan.to_json plan)
  else begin
    let workload =
      match Sweep.Workload.find workload_name with
      | Some w -> w
      | None ->
          Format.eprintf "unknown workload %S (available: %s)@." workload_name
            (String.concat ", "
               (List.map
                  (fun (w : Sweep.Workload.t) -> w.Sweep.Workload.name)
                  (Sweep.Workload.all ())));
          exit 1
    in
    let workload = Fault.Inject.workload plan workload in
    let specs = workload.Sweep.Workload.specs in
    let seeds = List.init n_seeds Fun.id in
    let generator =
      match strategy with
      | "grid" -> Sweep.Generator.grid ~specs ~f_min ~f_max ~seeds
      | "pareto" -> Sweep.Generator.pareto ~specs ~f_min ~f_max ~seeds ()
      | s ->
          Format.eprintf "unknown strategy %S (grid|pareto)@." s;
          exit 1
    in
    Format.eprintf "faultsim: plan %a@." Fault.Plan.pp plan;
    let report =
      Sweep.Pool.run ~jobs
        ~counters:(counters_file <> None)
        ~workload ~generator ()
    in
    if json then print_string (Sweep.Report.to_json report)
    else Format.printf "%a" Sweep.Report.pp report;
    (match counters_file with
    | Some path ->
        write_text path (Sweep.Report.counters_json report);
        Format.eprintf "wrote counters to %s@." path
    | None -> ());
    Format.eprintf "faultsim: %d evaluated, %d quarantined (jobs=%d)@."
      (List.length report.Sweep.Report.entries)
      (List.length report.Sweep.Report.failures)
      jobs
  end

let faultsim_cmd =
  let workload_t =
    Arg.(
      value & opt string "fir"
      & info [ "workload" ] ~doc:"Built-in workload to explore under faults.")
  in
  let strategy_t =
    Arg.(
      value & opt string "grid"
      & info [ "strategy" ] ~doc:"Search strategy: \\$(b,grid) or \\$(b,pareto).")
  in
  let jobs_t =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~doc:"Worker domains (1 = sequential).")
  in
  let f_min_t =
    Arg.(value & opt int 4 & info [ "f-min" ] ~doc:"Smallest fractional width.")
  in
  let f_max_t =
    Arg.(value & opt int 7 & info [ "f-max" ] ~doc:"Largest fractional width.")
  in
  let seeds_t =
    Arg.(
      value & opt int 2
      & info [ "seeds" ] ~doc:"Stimulus seeds per wordlength (0..N-1).")
  in
  let plan_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Load the fault plan from canonical JSON (as written by \
             \\$(b,--emit-plan)); overrides all plan flags.")
  in
  let fault_seed_t =
    Arg.(
      value & opt int 42
      & info [ "fault-seed" ] ~doc:"Fault schedule seed (pure-hash replay).")
  in
  let rate name doc = Arg.(value & opt float 0.0 & info [ name ] ~doc) in
  let nan_t = rate "nan-rate" "Stimulus sample -> NaN probability." in
  let inf_t = rate "inf-rate" "Stimulus sample -> +/-infinity probability." in
  let denormal_t =
    rate "denormal-rate" "Stimulus sample -> IEEE denormal probability."
  in
  let extreme_t =
    rate "extreme-rate" "Stimulus sample -> +/-extreme-mag probability."
  in
  let extreme_mag_t =
    Arg.(
      value & opt float 1e30
      & info [ "extreme-mag" ] ~doc:"Magnitude of an extreme sample.")
  in
  let bitflip_t =
    rate "bitflip-rate" "Post-quantization SEU probability per assignment."
  in
  let overflow_t =
    rate "overflow-rate" "Forced overflow probability per assignment."
  in
  let starve_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "starve-after" ]
          ~doc:"Stimulus channels produce only this many samples.")
  in
  let targets_t =
    Arg.(
      value & opt_all string []
      & info [ "target" ] ~docv:"SIGNAL"
          ~doc:"Inject only into \\$(docv) (repeatable; default: all).")
  in
  let on_overflow_t =
    Arg.(
      value & opt string "keep"
      & info [ "on-overflow" ]
          ~doc:
            "Overflow policy override: \\$(b,keep), \\$(b,raise) (crash + \
             quarantine) or \\$(b,collect) (record and keep going).")
  in
  let emit_plan_t =
    Arg.(
      value & flag
      & info [ "emit-plan" ]
          ~doc:"Print the canonical plan JSON and exit (no simulation).")
  in
  let json_t =
    Arg.(value & flag & info [ "json" ] ~doc:"Canonical JSON report.")
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Run a wordlength sweep under a seeded, deterministic \
          fault-injection plan: SEU bitflips and forced overflows at the \
          assignment site, with crashing candidates quarantined into a \
          partial report that is byte-identical for any --jobs.")
    Term.(
      const run_faultsim $ workload_t $ strategy_t $ jobs_t $ f_min_t
      $ f_max_t $ seeds_t $ plan_t $ fault_seed_t $ nan_t $ inf_t
      $ denormal_t $ extreme_t $ extreme_mag_t $ bitflip_t $ overflow_t
      $ starve_t $ targets_t $ on_overflow_t $ emit_plan_t $ json_t
      $ counters_file_t $ verbose_t)

(* --- trace: one workload under full tracing ----------------------------- *)

let run_trace workload_name out_path counters_file ring_cap verbose =
  setup_logs verbose;
  match Oracle.Workloads.find workload_name with
  | None ->
      Format.eprintf "unknown workload %S (available: %s)@." workload_name
        (String.concat ", "
           (List.map
              (fun (w : Oracle.Workloads.t) -> w.Oracle.Workloads.name)
              Oracle.Workloads.all));
      exit 1
  | Some w ->
      let b = w.Oracle.Workloads.build () in
      let ctr = Trace.Counters.create () in
      let ring = Trace.Ring.create ~capacity:ring_cap () in
      Sim.Env.set_sink b.Oracle.Workloads.env
        (Trace.Sink.tee (Trace.Counters.sink ctr) (Trace.Ring.sink ring));
      Trace.Spans.set_enabled true;
      let t0 = Trace.Spans.now () in
      b.Oracle.Workloads.run ();
      Trace.Spans.record ~cat:"workload"
        ~name:(Printf.sprintf "run %s" w.Oracle.Workloads.name)
        ~t0 ~t1:(Trace.Spans.now ()) ();
      Sim.Env.clear_sink b.Oracle.Workloads.env;
      Format.printf "%a" Trace.Counters.pp ctr;
      if Trace.Ring.dropped ring > 0 then
        Format.printf
          "ring: kept the last %d of %d events (%d dropped; raise --ring)@."
          (Trace.Ring.length ring)
          (Trace.Ring.length ring + Trace.Ring.dropped ring)
          (Trace.Ring.dropped ring);
      Trace.Chrome.write_file ~path:out_path ~spans:(Trace.Spans.drain ())
        ~ring ();
      Trace.Spans.set_enabled false;
      Format.printf "wrote %s (chrome://tracing or Perfetto)@." out_path;
      (match counters_file with
      | Some path ->
          write_text path
            (Trace.Counters.to_json
               ~meta:
                 [ ("workload", Trace.Json.string_lit w.Oracle.Workloads.name) ]
               ctr);
          Format.printf "wrote %s@." path
      | None -> ())

let trace_cmd =
  let workload_t =
    Arg.(
      value & pos 0 string "fir"
      & info [] ~docv:"WORKLOAD"
          ~doc:"Conformance workload to trace (fir|lms|cordic|timing|ddc).")
  in
  let out_t =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Chrome trace output path.")
  in
  let ring_t =
    Arg.(
      value & opt int 4096
      & info [ "ring" ] ~doc:"Event ring-buffer capacity (last N events).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one conformance workload with the full observability stack: \
          per-signal counters to stdout, the last N raw events and the \
          wall-clock spans to a Chrome trace_event JSON.")
    Term.(
      const run_trace $ workload_t $ out_t $ counters_file_t $ ring_t
      $ verbose_t)

(* --- check: the conformance oracle ------------------------------------- *)

let run_check seed per_combo update_golden no_bench golden_dir jobs faults
    compiled with_verify with_serve with_sync with_chaos verbose =
  setup_logs verbose;
  let seed =
    match seed with Some s -> s | None -> Oracle.Differential.default_seed ()
  in
  Format.printf
    "fxrefine check: seed %d (replay with --check-seed %d or \
     FXREFINE_QCHECK_SEED=%d)@."
    seed seed seed;
  let diff = Oracle.Differential.run ~seed ~per_combo () in
  Format.printf "%a@." Oracle.Differential.pp_report diff;
  let meta = Oracle.Metamorphic.run_all () in
  Format.printf "%a@." Oracle.Metamorphic.pp_report meta;
  let golden = Oracle.Golden.check ~update:update_golden ?dir:golden_dir () in
  Format.printf "%a@." Oracle.Golden.pp_result golden;
  (* The chaos gate forks, and OCaml 5 forbids [Unix.fork] once any
     domain was ever created in the process — so it must run before
     the sweep/trace/serve gates (and before its own resume legs)
     spawn worker domains. *)
  let chaos_ok =
    if with_chaos then begin
      let cr = Oracle.Chaos_check.run ?jobs ~seed () in
      Format.printf "%a@." Oracle.Chaos_check.pp_report cr;
      Oracle.Chaos_check.passed cr
    end
    else true
  in
  let sweep = Oracle.Sweep_check.run ?jobs () in
  Format.printf "%a@." Oracle.Sweep_check.pp_report sweep;
  let trace = Oracle.Trace_check.run ?jobs () in
  Format.printf "%a@." Oracle.Trace_check.pp_report trace;
  let faults_ok =
    if faults then begin
      let fr = Oracle.Fault_check.run ?jobs () in
      Format.printf "%a@." Oracle.Fault_check.pp_report fr;
      Oracle.Fault_check.passed fr
    end
    else true
  in
  let compiled_ok =
    if compiled then begin
      let cr = Oracle.Compile_check.run () in
      Format.printf "%a@." Oracle.Compile_check.pp_report cr;
      Oracle.Compile_check.passed cr
    end
    else true
  in
  let bench_ok =
    if no_bench then begin
      Format.printf "bench guard: skipped (--no-bench)@.";
      true
    end
    else begin
      let bench = Oracle.Bench_guard.run () in
      Format.printf "%a@." Oracle.Bench_guard.pp_report bench;
      Oracle.Bench_guard.passed bench
    end
  in
  let compile_bench_ok =
    if compiled && not no_bench then begin
      let bench = Oracle.Bench_guard.run_compiled () in
      Format.printf "compiled %a@." Oracle.Bench_guard.pp_report bench;
      Oracle.Bench_guard.passed bench
    end
    else true
  in
  let verify_ok =
    if with_verify then begin
      let vr = Oracle.Verify_check.run ~update:update_golden ?dir:golden_dir () in
      Format.printf "%a@." Oracle.Verify_check.pp_report vr;
      Oracle.Verify_check.passed vr
    end
    else true
  in
  let verify_bench_ok =
    if with_verify && not no_bench then begin
      let bench = Oracle.Bench_guard.run_verify () in
      Format.printf "verify %a@." Oracle.Bench_guard.pp_report bench;
      Oracle.Bench_guard.passed bench
    end
    else true
  in
  let serve_ok =
    if with_serve then begin
      let sr = Oracle.Serve_check.run ?jobs () in
      Format.printf "%a@." Oracle.Serve_check.pp_report sr;
      Oracle.Serve_check.passed sr
    end
    else true
  in
  let sync_ok =
    if with_sync then begin
      let sr = Oracle.Sync_check.run ?jobs () in
      Format.printf "%a@." Oracle.Sync_check.pp_report sr;
      Oracle.Sync_check.passed sr
    end
    else true
  in
  let sync_bench_ok =
    if with_sync && not no_bench then begin
      let bench = Oracle.Bench_guard.run_sync () in
      Format.printf "sync %a@." Oracle.Bench_guard.pp_report bench;
      Oracle.Bench_guard.passed bench
    end
    else true
  in
  let ok =
    Oracle.Differential.passed diff
    && Oracle.Metamorphic.passed meta
    && Oracle.Golden.passed golden
    && Oracle.Sweep_check.passed sweep
    && Oracle.Trace_check.passed trace && faults_ok && compiled_ok
    && bench_ok && compile_bench_ok && verify_ok && verify_bench_ok
    && serve_ok && sync_ok && sync_bench_ok && chaos_ok
  in
  Format.printf "fxrefine check: %s@." (if ok then "PASS" else "FAIL");
  if not ok then exit 1

let check_cmd =
  let seed_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "check-seed" ]
          ~doc:
            "Oracle seed (default: \\$(b,FXREFINE_QCHECK_SEED) or the fixed \
             built-in constant).")
  in
  let per_combo_t =
    Arg.(
      value & opt int 1000
      & info [ "per-combo" ]
          ~doc:"Differential cases per sign/overflow/round combination.")
  in
  let update_t =
    Arg.(
      value & flag
      & info [ "update-golden" ]
          ~doc:"Rewrite the golden files instead of comparing against them.")
  in
  let no_bench_t =
    Arg.(
      value & flag
      & info [ "no-bench" ] ~doc:"Skip the throughput regression guard.")
  in
  let golden_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden-dir" ] ~doc:"Golden file directory override.")
  in
  let jobs_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains for the sweep-determinism gate (default: \
             recommended domain count, at least 2).")
  in
  let faults_t =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Also run the fault-injection gate: schedule replay, faulted \
             sweep quarantine determinism, collect-policy degradation.")
  in
  let compiled_t =
    Arg.(
      value & flag
      & info [ "compiled" ]
          ~doc:
            "Also run the compiled-executor gate: byte-equality between \
             the flat-schedule executor and the interpreter over every \
             conformance workload graph (batched, with fault replay), \
             sweep metric parity, and the compiled-throughput guard \
             against BENCH_compile.json (unless \\$(b,--no-bench)).")
  in
  let verify_t =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Also run the verification-oracle gate: prove/refute \
             no-overflow and no-limit-cycle on every conformance workload \
             flowgraph plus the pinned biquad exemplars, cross-check \
             refutations against the range analysis (soundness), pin the \
             counterexample stimuli as golden files and replay them \
             through interpreter and compiled executor, plus the \
             verification-throughput guard against BENCH_verify.json \
             (unless \\$(b,--no-bench)).")
  in
  let serve_t =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Also run the serve gate: the content-addressed evaluation \
             cache must be byte-transparent (no-cache vs cold vs warm vs \
             parallel-warm reports identical, warm answering every \
             candidate from disk), and a daemon round trip over a real \
             Unix socket must return the same byte-identical report.")
  in
  let sync_t =
    Arg.(
      value & flag
      & info [ "sync" ]
          ~doc:
            "Also run the synchronizer gate: the closed ML-TED timing loop \
             must lock on drifting-tau 4-PAM in float, stay within 2 dB MER \
             after the \\$(b,\\\\S6.1) refinement (saturating loop-filter \
             integrator, error()-overruled NCO phase visible in the \
             decisions), render a jobs-independent sweep report, and hold \
             the syncbench throughput guard against BENCH_sync.json \
             (unless \\$(b,--no-bench)).")
  in
  let chaos_t =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Also run the chaos gate: fork checkpointed sweeps and a \
             journaled daemon, \\$(b,SIGKILL) them at seeded points \
             mid-wave, resume, and require the resumed reports \
             byte-identical to never-killed runs, every write-ahead \
             intent recovered on restart, a clean \\$(b,SIGTERM) drain, \
             and a full-CRC cache scrub that detects every seeded \
             corruption.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the conformance oracle: differential quantizer testing, \
          metamorphic workload invariants, golden traces, sweep determinism, \
          trace determinism, bench guard; \\$(b,--faults) adds the \
          fault-injection gate, \\$(b,--compiled) the compiled-executor \
          gate, \\$(b,--verify) the verification-oracle gate, \
          \\$(b,--serve) the cache/daemon gate, \\$(b,--sync) the \
          synchronizer lock/refine gate, \\$(b,--chaos) the kill-based \
          crash-safety gate.")
    Term.(
      const run_check $ seed_t $ per_combo_t $ update_t $ no_bench_t
      $ golden_dir_t $ jobs_t $ faults_t $ compiled_t $ verify_t $ serve_t
      $ sync_t $ chaos_t $ verbose_t)

(* --- compile: inspect the flat-schedule executor ------------------------ *)

let run_compile workload_name batch steps verbose =
  setup_logs verbose;
  let workloads =
    match workload_name with
    | "all" -> Oracle.Workloads.all
    | name -> (
        match Oracle.Workloads.find name with
        | Some w -> [ w ]
        | None ->
            Format.eprintf "compile: unknown workload %s@." name;
            exit 1)
  in
  let all_ok = ref true in
  List.iter
    (fun (w : Oracle.Workloads.t) ->
      let b = w.Oracle.Workloads.build () in
      match b.Oracle.Workloads.extract_graph with
      | None ->
          Format.printf "%-8s no extractor@." w.Oracle.Workloads.name
      | Some extract -> (
          match Compile.compile ~batch (extract ()) with
          | exception Compile.Cannot_compile msg ->
              all_ok := false;
              Format.printf "%-8s cannot compile: %s@."
                w.Oracle.Workloads.name msg
          | prog ->
              (* quick equality spot-check, then throughput *)
              let g = extract () in
              let plan = Fault.Plan.make ~seed:97 () in
              let ranges = Hashtbl.create 8 in
              List.iter
                (fun (n : Sfg.Node.t) ->
                  match n.Sfg.Node.op with
                  | Sfg.Node.Input iv ->
                      let lo = Interval.lo iv and hi = Interval.hi iv in
                      let r =
                        if
                          Float.is_finite lo && Float.is_finite hi
                          && hi -. lo > 0.0
                          && hi -. lo <= 1e6
                        then (lo, hi)
                        else (-1.0, 1.0)
                      in
                      Hashtbl.replace ranges n.Sfg.Node.name r
                  | _ -> ())
                (Sfg.Graph.nodes g);
              let stim name lane step =
                let lo, hi =
                  match Hashtbl.find_opt ranges name with
                  | Some r -> r
                  | None -> (-1.0, 1.0)
                in
                let u =
                  Fault.Plan.draw plan ~stream:"stim"
                    ~key:(Printf.sprintf "%d:%s" lane name)
                    ~index:step
                in
                lo +. (u *. (hi -. lo))
              in
              let prog_eq = Compile.compile ~batch:2 g in
              let ct =
                Compile.traces prog_eq ~steps:32
                  ~inputs:(fun name ~lane step -> stim name lane step)
              in
              let mism = ref 0 in
              for lane = 0 to 1 do
                let it =
                  Sfg.Graph.simulate g ~steps:32 ~inputs:(fun name step ->
                      stim name lane step)
                in
                List.iter2
                  (fun (_, per_lane) (_, itr) ->
                    Array.iteri
                      (fun s iv ->
                        if
                          Int64.bits_of_float per_lane.(lane).(s)
                          <> Int64.bits_of_float iv
                        then incr mism)
                      itr)
                  ct it
              done;
              if !mism > 0 then all_ok := false;
              let buf =
                Array.init 8192 (fun i -> Float.sin (Float.of_int i) *. 0.75)
              in
              let inputs _name ~lane step =
                Array.unsafe_get buf ((lane + (step * 31)) land 8191)
              in
              Compile.run prog ~steps ~inputs;
              let reps = ref 0 in
              let t0 = Sys.time () in
              let elapsed () = Sys.time () -. t0 in
              while elapsed () < 0.3 || !reps = 0 do
                Compile.run prog ~steps ~inputs;
                incr reps
              done;
              let sps =
                Float.of_int (!reps * steps * batch) /. elapsed ()
              in
              Format.printf
                "%-8s %3d nodes -> %3d instrs  B=%-3d %8d steps/run  \
                 %12.0f lane-samples/sec  equality(B=2,32 steps): %s@."
                w.Oracle.Workloads.name (Compile.node_count prog)
                (Compile.instr_count prog) batch steps sps
                (if !mism = 0 then "ok" else Printf.sprintf "%d MISMATCHES" !mism)))
    workloads;
  if not !all_ok then exit 1

let compile_cmd =
  let workload_t =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Conformance workload to compile (fir|lms|cordic|timing|ddc|all).")
  in
  let batch_t =
    Arg.(
      value & opt int 64
      & info [ "batch"; "B" ] ~doc:"Stimulus vectors advanced per tick.")
  in
  let steps_t =
    Arg.(
      value & opt int 4096 & info [ "steps" ] ~doc:"Ticks per measured run.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Lower conformance-workload flowgraphs to the flat-schedule \
          batched executor: per-workload instruction counts, a \
          compiled-vs-interpreted equality spot check, and batched \
          throughput.")
    Term.(const run_compile $ workload_t $ batch_t $ steps_t $ verbose_t)

(* --- verify: the sound bit-level verification oracle -------------------- *)

let verify_targets () =
  List.map
    (fun (w : Oracle.Workloads.t) ->
      ( w.Oracle.Workloads.name,
        fun () ->
          let b = w.Oracle.Workloads.build () in
          match b.Oracle.Workloads.extract_graph with
          | Some f -> f ()
          | None -> (
              match b.Oracle.Workloads.graph with
              | Some g -> g
              | None ->
                  failwith ("no flowgraph for " ^ w.Oracle.Workloads.name)) ))
    Oracle.Workloads.all
  @ Verify.Designs.all

let run_verify design prop_str max_bits depth max_states json verbose =
  setup_logs verbose;
  let properties =
    match prop_str with
    | "all" -> [ Verify.Engine.No_overflow; Verify.Engine.No_limit_cycle ]
    | s -> (
        match Verify.Engine.property_of_string s with
        | Some p -> [ p ]
        | None ->
            Format.eprintf
              "verify: unknown property %S (overflow|limit-cycle|all)@." s;
            exit 1)
  in
  let targets =
    match design with
    | "all" -> verify_targets ()
    | name -> (
        match List.assoc_opt name (verify_targets ()) with
        | Some mk -> [ (name, mk) ]
        | None ->
            Format.eprintf "verify: unknown design %S (available: %s, all)@."
              name
              (String.concat ", " (List.map fst (verify_targets ())));
            exit 1)
  in
  let t0 = Unix.gettimeofday () in
  let reports =
    List.map
      (fun (name, mk) ->
        ( name,
          List.map
            (fun prop ->
              Verify.Engine.verify ~max_bits ~depth ~max_states prop (mk ()))
            properties ))
      targets
  in
  (* the report itself is deterministic; timing goes to stderr only *)
  if json then begin
    print_string "[";
    List.iteri
      (fun i (name, rs) ->
        if i > 0 then print_string ",";
        Printf.printf "{\"design\":\"%s\",\"reports\":[" name;
        List.iteri
          (fun j r ->
            if j > 0 then print_string ",";
            print_string (Verify.Engine.report_to_json r))
          rs;
        print_string "]}")
      reports;
    print_string "]\n"
  end
  else
    List.iter
      (fun (name, rs) ->
        List.iter
          (fun (r : Verify.Engine.report) ->
            Format.printf "%-16s %a@." name Verify.Engine.pp_report r;
            match r.Verify.Engine.verdict with
            | Verify.Engine.Refuted ce ->
                print_string
                  (Verify.Stim.to_string ~property:r.Verify.Engine.property ce)
            | _ -> ())
          rs)
      reports;
  Format.eprintf "verify: %d design(s) in %.3f s@." (List.length reports)
    (Unix.gettimeofday () -. t0)

let verify_cmd =
  let design_t =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"DESIGN"
          ~doc:
            "Design flowgraph to verify: a conformance workload \
             (fir|lms|cordic|timing|ddc), a pinned exemplar \
             (biquad-under|biquad-repaired), or \\$(b,all).")
  in
  let property_t =
    Arg.(
      value & opt string "all"
      & info [ "property" ]
          ~doc:
            "Property to check: \\$(b,overflow), \\$(b,limit-cycle) or \
             \\$(b,all).")
  in
  let max_bits_t =
    Arg.(
      value & opt int 10
      & info [ "max-bits" ]
          ~doc:
            "Exhaustive-alphabet budget: enumerate all inputs when the \
             total input entropy fits this many bits, else fall back to \
             corner stimuli (refute-only).")
  in
  let depth_t =
    Arg.(
      value & opt int 64
      & info [ "depth" ]
          ~doc:
            "Bounded-unrolling depth for corner stimuli and the \
             zero-input limit-cycle horizon k.")
  in
  let max_states_t =
    Arg.(
      value & opt int 65536
      & info [ "max-states" ] ~doc:"Reachable-state budget of the search.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Canonical (deterministic) JSON report.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Prove or refute no-overflow and zero-input limit-cycle freedom \
          on a design's flowgraph by exhaustive or bounded bit-level \
          state-space search over the compiled executor; refutations come \
          with a concrete hex-float counterexample stimulus.")
    Term.(
      const run_verify $ design_t $ property_t $ max_bits_t $ depth_t
      $ max_states_t $ json_t $ verbose_t)

(* --- sfg ---------------------------------------------------------------- *)

let run_sfg auto dot_path =
  let g =
    if auto then begin
      (* extract the flowgraph automatically from one executed cycle *)
      let env = Sim.Env.create ~seed:11 () in
      let rng = Stats.Rng.create ~seed:2024 in
      let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:200 () in
      let input = Sim.Channel.of_fun "rx" stimulus in
      let output = Sim.Channel.create "y" in
      let eq = Dsp.Lms_equalizer.create env ~input ~output () in
      Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
      Sim.Signal.range (Dsp.Lms_equalizer.b eq) (-0.2) 0.2;
      Dsp.Lms_equalizer.run eq ~cycles:100;
      Sim.Extract.graph env ~outputs:[ "y"; "w" ]
        ~step:(fun () -> Dsp.Lms_equalizer.step eq)
        ()
    end
    else Dsp.Lms_equalizer.to_sfg ~b_range:(-0.2, 0.2) ()
  in
  let ranges = Sfg.Range_analysis.run g in
  let noise = Sfg.Noise_analysis.run g ~ranges in
  Format.printf "=== analytical ranges (equalizer SFG) ===@.%a@."
    Sfg.Range_analysis.pp ranges;
  Format.printf "=== analytical noise ===@.%a@." Sfg.Noise_analysis.pp noise;
  match dot_path with
  | Some path ->
      Sfg.Dot.write_file g path ~ranges ();
      Format.printf "wrote %s@." path
  | None -> ()

let sfg_cmd =
  let dot_t =
    Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"DOT output path.")
  in
  let auto_t =
    Arg.(
      value & flag
      & info [ "auto" ]
          ~doc:
            "Extract the flowgraph automatically from the running design \
             instead of using the hand-written one.")
  in
  Cmd.v
    (Cmd.info "sfg" ~doc:"Static analysis of the equalizer flowgraph.")
    Term.(const run_sfg $ auto_t $ dot_t)

(* --- serve / submit: refinement-as-a-service ---------------------------- *)

let run_serve socket cache_dir max_entries journal_dir max_conns verbose =
  setup_logs verbose;
  Format.eprintf "fxrefine serve: socket %s%s%s@." socket
    (match cache_dir with
    | Some d -> Printf.sprintf ", cache %s" d
    | None -> ", in-memory cache")
    (match journal_dir with
    | Some d -> Printf.sprintf ", journal %s" d
    | None -> "");
  Serve.Daemon.run ?cache_dir ?max_entries ?journal_dir ?max_conns
    ~log:(fun m -> Format.eprintf "fxrefine serve: %s@." m)
    ~socket ()

let serve_cmd =
  let socket_t =
    Arg.(
      value
      & opt string "fxrefine.sock"
      & info [ "socket" ] ~doc:"Unix-domain socket path to listen on.")
  in
  let cache_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ]
          ~doc:
            "Persist the shared evaluation cache here (in-memory only \
             when omitted).")
  in
  let max_entries_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-entries" ]
          ~doc:"Cache size bound; oldest entries are evicted first (FIFO).")
  in
  let journal_dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ]
          ~doc:
            "Supervision directory: every admitted sweep job is recorded \
             as a write-ahead intent before it runs (and checkpointed \
             wave by wave), so a daemon killed mid-job re-runs or \
             quarantines it on the next start over the same directory. \
             SIGTERM drains gracefully: in-flight waves finish and are \
             checkpointed before exit.")
  in
  let max_conns_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-conns" ]
          ~doc:
            "Concurrent connection limit (default 64); connections over \
             the limit receive one structured \\$(b,busy) reply and are \
             closed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the refinement daemon: accept sweep jobs over a Unix-domain \
          socket (line-delimited JSON), all jobs sharing one \
          content-addressed evaluation cache.  Stops on a \\$(b,shutdown) \
          request (see \\$(b,fxrefine submit --op shutdown)) or a graceful \
          SIGTERM drain.")
    Term.(
      const run_serve $ socket_t $ cache_dir_t $ max_entries_t $ journal_dir_t
      $ max_conns_t $ verbose_t)

let run_submit socket op workload strategy f_min f_max n_seeds jobs budget
    target_db timeout_s verbose =
  setup_logs verbose;
  let client =
    match Serve.Client.connect_retry ~attempts:30 socket with
    | c -> c
    | exception exn ->
        Format.eprintf "submit: cannot reach daemon at %s: %s@." socket
          (Printexc.to_string exn);
        exit 1
  in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close client)
    (fun () ->
      let request =
        match op with
        | "ping" -> Serve.Protocol.Ping { id = "cli" }
        | "stats" -> Serve.Protocol.Stats { id = "cli" }
        | "shutdown" -> Serve.Protocol.Shutdown { id = "cli" }
        | "sweep" ->
            Serve.Protocol.Sweep
              {
                id = "cli";
                params =
                  {
                    Serve.Protocol.workload;
                    strategy;
                    f_min;
                    f_max;
                    seeds = n_seeds;
                    jobs;
                    budget;
                    target_db;
                    timeout_s;
                  };
              }
        | s ->
            Format.eprintf "unknown op %S (sweep|ping|stats|shutdown)@." s;
            exit 1
      in
      match Serve.Client.request client request with
      | Serve.Protocol.Pong _ -> Format.printf "pong@."
      | Serve.Protocol.Bye _ -> Format.printf "daemon shutting down@."
      | Serve.Protocol.Stats_reply { stats; _ } ->
          Format.printf "cache: %a@." Serve.Cache.pp_stats stats
      | Serve.Protocol.Report { report; hits; misses; _ } ->
          print_string report;
          Format.eprintf "job: %d cache hits, %d misses@." hits misses
      | Serve.Protocol.Error { message; _ } ->
          Format.eprintf "daemon error: %s@." message;
          exit 1
      | Serve.Protocol.Busy { active; limit; _ } ->
          Format.eprintf
            "daemon busy: %d/%d connections in use; retry later@." active
            limit;
          exit 1
      | exception Serve.Client.Protocol_error m ->
          Format.eprintf "submit: %s@." m;
          exit 1)

let submit_cmd =
  let socket_t =
    Arg.(
      value
      & opt string "fxrefine.sock"
      & info [ "socket" ] ~doc:"Unix-domain socket the daemon listens on.")
  in
  let op_t =
    Arg.(
      value & opt string "sweep"
      & info [ "op" ]
          ~doc:
            "Operation: \\$(b,sweep) (submit a job, print its canonical \
             JSON report), \\$(b,ping), \\$(b,stats) or \\$(b,shutdown).")
  in
  let workload_t =
    Arg.(
      value & opt string "fir"
      & info [ "workload" ] ~doc:"Built-in workload for \\$(b,--op sweep).")
  in
  let strategy_t =
    Arg.(
      value & opt string "grid"
      & info [ "strategy" ]
          ~doc:"Search strategy: \\$(b,grid), \\$(b,bisect) or \\$(b,pareto).")
  in
  let f_min_t =
    Arg.(value & opt int 2 & info [ "f-min" ] ~doc:"Smallest fractional width.")
  in
  let f_max_t =
    Arg.(value & opt int 10 & info [ "f-max" ] ~doc:"Largest fractional width.")
  in
  let seeds_t =
    Arg.(
      value & opt int 2
      & info [ "seeds" ] ~doc:"Stimulus seeds per wordlength (0..N-1).")
  in
  let jobs_t =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~doc:"Worker domains for the job.")
  in
  let budget_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~doc:"Cap on the number of evaluated candidates.")
  in
  let target_t =
    Arg.(
      value & opt float 40.0
      & info [ "target-db" ] ~doc:"SQNR target for \\$(b,bisect).")
  in
  let timeout_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ]
          ~doc:"Wall-clock job limit in seconds (checked between waves).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one request to a running \\$(b,fxrefine serve) daemon and \
          print the response: a sweep job's canonical JSON report (cache \
          hit/miss counts on stderr), a cache stats snapshot, a liveness \
          ping, or a shutdown.")
    Term.(
      const run_submit $ socket_t $ op_t $ workload_t $ strategy_t $ f_min_t
      $ f_max_t $ seeds_t $ jobs_t $ budget_t $ target_t $ timeout_t
      $ verbose_t)

let () =
  let info =
    Cmd.info "fxrefine" ~version:"1.0.0"
      ~doc:"DSP ASIC fixed-point refinement (DATE 1999 reproduction)."
  in
  (* Exit codes: 0 success, 1 gate/usage failure, 2 crash.  A crash
     prints one line (registered exception printers make it precise);
     the backtrace hides behind FXREFINE_DEBUG=1 so scripted callers
     get stable stderr. *)
  let debug = Sys.getenv_opt "FXREFINE_DEBUG" = Some "1" in
  if debug then Printexc.record_backtrace true;
  try
    exit
      (Cmd.eval ~catch:false
         (Cmd.group info
            [
              equalizer_cmd; timing_cmd; timing_ml_cmd; cordic_cmd;
              quantize_cmd; sfg_cmd;
              sweep_cmd; faultsim_cmd; trace_cmd; check_cmd; compile_cmd;
              verify_cmd; serve_cmd; submit_cmd;
            ]))
  with e ->
    let bt = Printexc.get_backtrace () in
    Format.eprintf "fxrefine: %s@." (Printexc.to_string e);
    if debug then Format.eprintf "%s@." bt
    else Format.eprintf "(set FXREFINE_DEBUG=1 for a backtrace)@.";
    exit 2
