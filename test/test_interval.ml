(* Unit + property tests: Interval — soundness of the range-propagation
   arithmetic is what makes the quasi-analytical MSB technique safe. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-12

let iv lo hi = Interval.make lo hi

let test_make_invalid () =
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Interval.make: lo (1) > hi (0)") (fun () ->
      ignore (Interval.make 1.0 0.0))

let test_empty () =
  check bool_t "empty" true (Interval.is_empty Interval.empty);
  check bool_t "mem" false (Interval.mem 0.0 Interval.empty);
  check float_t "width" 0.0 (Interval.width Interval.empty)

let test_join_meet () =
  let a = iv 0.0 2.0 and b = iv 1.0 3.0 in
  check bool_t "join" true (Interval.equal (Interval.join a b) (iv 0.0 3.0));
  check bool_t "meet" true (Interval.equal (Interval.meet a b) (iv 1.0 2.0));
  check bool_t "disjoint meet empty" true
    (Interval.is_empty (Interval.meet (iv 0.0 1.0) (iv 2.0 3.0)));
  check bool_t "join empty id" true
    (Interval.equal (Interval.join Interval.empty a) a)

let test_arith_table () =
  (* the paper's §4.1 propagation table *)
  let a = iv (-1.0) 2.0 and b = iv 0.5 3.0 in
  check bool_t "add" true
    (Interval.equal (Interval.add a b) (iv (-0.5) 5.0));
  check bool_t "sub" true
    (Interval.equal (Interval.sub a b) (iv (-4.0) 1.5));
  check bool_t "mul" true (Interval.equal (Interval.mul a b) (iv (-3.0) 6.0))

let test_mul_signs () =
  check bool_t "neg*neg" true
    (Interval.equal
       (Interval.mul (iv (-3.0) (-1.0)) (iv (-2.0) (-1.0)))
       (iv 1.0 6.0));
  check bool_t "straddle*straddle" true
    (Interval.equal
       (Interval.mul (iv (-2.0) 3.0) (iv (-1.0) 4.0))
       (iv (-8.0) 12.0))

let test_div_straddle_zero () =
  check bool_t "unbounded" true
    (Interval.equal (Interval.div (iv 1.0 2.0) (iv (-1.0) 1.0)) Interval.entire)

let test_div_positive () =
  check bool_t "quotient" true
    (Interval.equal (Interval.div (iv 1.0 4.0) (iv 2.0 4.0)) (iv 0.25 2.0))

let test_abs () =
  check bool_t "straddle" true
    (Interval.equal (Interval.abs (iv (-3.0) 1.0)) (iv 0.0 3.0));
  check bool_t "negative" true
    (Interval.equal (Interval.abs (iv (-3.0) (-1.0))) (iv 1.0 3.0))

let test_minmax () =
  let a = iv 0.0 2.0 and b = iv 1.0 3.0 in
  check bool_t "min" true (Interval.equal (Interval.min_ a b) (iv 0.0 2.0));
  check bool_t "max" true (Interval.equal (Interval.max_ a b) (iv 1.0 3.0))

let test_shift () =
  check bool_t "shl 2" true
    (Interval.equal (Interval.shift_left (iv (-1.0) 1.5) 2) (iv (-4.0) 6.0));
  check bool_t "shr 1" true
    (Interval.equal (Interval.shift_left (iv (-1.0) 1.0) (-1)) (iv (-0.5) 0.5))

let test_clamp () =
  let lim = iv (-1.0) 1.0 in
  check bool_t "clamps" true
    (Interval.equal (Interval.clamp ~into:lim (iv (-5.0) 0.5)) (iv (-1.0) 0.5));
  check bool_t "inside unchanged" true
    (Interval.equal (Interval.clamp ~into:lim (iv (-0.2) 0.3)) (iv (-0.2) 0.3));
  check bool_t "fully outside pins to bound" true
    (Interval.equal (Interval.clamp ~into:lim (iv 5.0 6.0)) (iv 1.0 1.0))

let test_widen () =
  let a = iv 0.0 1.0 in
  check bool_t "hi escapes" true
    (Interval.equal (Interval.widen a (iv 0.0 2.0)) (iv 0.0 Float.infinity));
  check bool_t "stable stays" true
    (Interval.equal (Interval.widen a (iv 0.2 0.8)) a)

let test_exploded () =
  check bool_t "entire" true (Interval.is_exploded Interval.entire);
  check bool_t "huge" true (Interval.is_exploded (iv 0.0 1.0e30));
  check bool_t "normal" false (Interval.is_exploded (iv (-10.0) 10.0));
  check bool_t "custom threshold" true
    (Interval.is_exploded ~threshold:5.0 (iv 0.0 10.0))

let test_observe () =
  let t = Interval.observe (Interval.observe Interval.empty 2.0) (-1.0) in
  check bool_t "grows both" true (Interval.equal t (iv (-1.0) 2.0));
  check bool_t "nan ignored" true
    (Interval.equal (Interval.observe t Float.nan) t)

let test_mag () =
  check float_t "mag" 3.0 (Interval.mag (iv (-3.0) 1.0));
  check float_t "empty" 0.0 (Interval.mag Interval.empty)

(* --- soundness properties: op(iv) contains op of members -------------- *)

let gen_interval =
  QCheck2.Gen.(
    map2
      (fun a w -> Interval.make a (a +. Float.abs w))
      (float_range (-100.0) 100.0)
      (float_range 0.0 50.0))

let gen_member iv_gen =
  QCheck2.Gen.(
    iv_gen >>= fun i ->
    map
      (fun t -> (i, Interval.lo i +. (t *. Interval.width i)))
      (float_range 0.0 1.0))

let sound name op fop =
  QCheck2.Test.make ~name ~count:2000
    QCheck2.Gen.(pair (gen_member gen_interval) (gen_member gen_interval))
    (fun ((ia, a), (ib, b)) -> Interval.mem (fop a b) (op ia ib))

let prop_add_sound = sound "add sound" Interval.add ( +. )
let prop_sub_sound = sound "sub sound" Interval.sub ( -. )
let prop_mul_sound = sound "mul sound" Interval.mul ( *. )
let prop_min_sound = sound "min sound" Interval.min_ Float.min
let prop_max_sound = sound "max sound" Interval.max_ Float.max

let prop_div_sound =
  QCheck2.Test.make ~name:"div sound" ~count:2000
    QCheck2.Gen.(pair (gen_member gen_interval) (gen_member gen_interval))
    (fun ((ia, a), (ib, b)) ->
      b = 0.0 || Interval.mem (a /. b) (Interval.div ia ib))

let prop_join_upper_bound =
  QCheck2.Test.make ~name:"join is an upper bound" ~count:1000
    QCheck2.Gen.(pair gen_interval gen_interval)
    (fun (a, b) ->
      let j = Interval.join a b in
      Interval.subset a j && Interval.subset b j)

let prop_widen_upper_bound =
  QCheck2.Test.make ~name:"widen bounds both args" ~count:1000
    QCheck2.Gen.(pair gen_interval gen_interval)
    (fun (a, b) ->
      let w = Interval.widen a b in
      Interval.subset a w && Interval.subset b w)

let prop_neg_involution =
  QCheck2.Test.make ~name:"neg involution" ~count:1000 gen_interval (fun a ->
      Interval.equal (Interval.neg (Interval.neg a)) a)

(* Degenerate-heavy generator: zero-width points (±0.0 included),
   infinite endpoints, Empty — the widen_within edge cases gen_interval
   never produces. *)
let gen_interval_edgy =
  QCheck2.Gen.(
    frequency
      [
        (3, gen_interval);
        (2, map (fun a -> Interval.make a a) (float_range (-100.0) 100.0));
        ( 1,
          oneofl
            [
              Interval.empty;
              Interval.entire;
              Interval.make 0.0 0.0;
              Interval.make (-0.0) 0.0;
              Interval.make Float.neg_infinity 0.0;
              Interval.make 0.0 Float.infinity;
            ] );
      ])

(* Range_analysis re-applies the cap on every fixpoint sweep, so a
   widened bound must be a fixed point of another application with the
   same observation — including zero-width and infinite intervals. *)
let prop_widen_within_idempotent =
  QCheck2.Test.make ~name:"widen_within idempotent" ~count:2000
    QCheck2.Gen.(triple gen_interval_edgy gen_interval_edgy gen_interval_edgy)
    (fun (within, a, b) ->
      let w1 = Interval.widen_within ~within a b in
      Interval.equal (Interval.widen_within ~within w1 b) w1)

let test_widen_within_degenerate () =
  let point x = iv x x in
  (* a zero-width cap never widens past itself, and re-application is
     stable even when the observation escapes both sides *)
  let w1 = Interval.widen_within ~within:(point 1.0) (iv 0.0 1.0) (iv (-2.0) 3.0) in
  check bool_t "point cap" true (Interval.equal w1 (iv 0.0 1.0));
  check bool_t "point cap stable" true
    (Interval.equal (Interval.widen_within ~within:(point 1.0) w1 (iv (-2.0) 3.0)) w1);
  (* empty cap falls back to plain widen, still idempotent *)
  let w2 = Interval.widen_within ~within:Interval.empty (iv 0.0 1.0) (iv 0.0 2.0) in
  check bool_t "empty cap = widen" true
    (Interval.equal w2 (Interval.widen (iv 0.0 1.0) (iv 0.0 2.0)));
  check bool_t "empty cap stable" true
    (Interval.equal (Interval.widen_within ~within:Interval.empty w2 (iv 0.0 2.0)) w2);
  (* signed zero: -0.0 compares equal to 0.0, so a [-0.0, 0.0] observation
     must not widen a [0.0, 0.0] bound *)
  let z = Interval.widen_within ~within:Interval.entire (point 0.0) (iv (-0.0) 0.0) in
  check bool_t "signed zero" true (Interval.equal z (point 0.0))

let suite =
  ( "interval",
    [
      Alcotest.test_case "make invalid" `Quick test_make_invalid;
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "join/meet" `Quick test_join_meet;
      Alcotest.test_case "arith table" `Quick test_arith_table;
      Alcotest.test_case "mul signs" `Quick test_mul_signs;
      Alcotest.test_case "div straddle zero" `Quick test_div_straddle_zero;
      Alcotest.test_case "div positive" `Quick test_div_positive;
      Alcotest.test_case "abs" `Quick test_abs;
      Alcotest.test_case "min/max" `Quick test_minmax;
      Alcotest.test_case "shift" `Quick test_shift;
      Alcotest.test_case "clamp" `Quick test_clamp;
      Alcotest.test_case "widen" `Quick test_widen;
      Alcotest.test_case "widen_within degenerate" `Quick
        test_widen_within_degenerate;
      Alcotest.test_case "exploded" `Quick test_exploded;
      Alcotest.test_case "observe" `Quick test_observe;
      Alcotest.test_case "mag" `Quick test_mag;
      Test_support.Qseed.to_alcotest prop_add_sound;
      Test_support.Qseed.to_alcotest prop_sub_sound;
      Test_support.Qseed.to_alcotest prop_mul_sound;
      Test_support.Qseed.to_alcotest prop_min_sound;
      Test_support.Qseed.to_alcotest prop_max_sound;
      Test_support.Qseed.to_alcotest prop_div_sound;
      Test_support.Qseed.to_alcotest prop_join_upper_bound;
      Test_support.Qseed.to_alcotest prop_widen_upper_bound;
      Test_support.Qseed.to_alcotest prop_neg_involution;
      Test_support.Qseed.to_alcotest prop_widen_within_idempotent;
    ] )
