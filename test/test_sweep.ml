(* Unit tests: the parallel sweep engine — env snapshots, candidate
   evaluation, generators, and the pool's scheduling-independence
   contract (jobs=1 and jobs=2 must render byte-identical reports). *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* --- Env.snapshot / restore_into ---------------------------------------- *)

let test_snapshot_roundtrip () =
  let env = Sim.Env.create ~seed:1 () in
  let x = Sim.Signal.create env "x" in
  let y = Sim.Signal.create env "y" in
  Sim.Signal.range x (-2.0) 2.0;
  let base = Sim.Env.snapshot env in
  (* mutate: retype both, change annotations *)
  Sim.Signal.set_dtype x (Fixpt.Dtype.make "T" ~n:8 ~f:6 ());
  Sim.Signal.set_dtype y (Fixpt.Dtype.make "U" ~n:10 ~f:4 ());
  Sim.Signal.clear_range x;
  Sim.Signal.error y 0.01;
  Sim.Env.restore_into base env;
  check bool_t "x untyped again" true (Sim.Signal.dtype x = None);
  check bool_t "y untyped again" true (Sim.Signal.dtype y = None);
  check bool_t "x range restored" true
    (Sim.Signal.explicit_range x = Some (Interval.make (-2.0) 2.0));
  check bool_t "y error annotation dropped" true
    (Sim.Signal.error_injected y = None)

let test_snapshot_shape_mismatch () =
  let env_a = Sim.Env.create () in
  ignore (Sim.Signal.create env_a "a");
  let snap = Sim.Env.snapshot env_a in
  let env_b = Sim.Env.create () in
  ignore (Sim.Signal.create env_b "b");
  check bool_t "restore into different registry raises" true
    (try
       Sim.Env.restore_into snap env_b;
       false
     with Invalid_argument _ -> true)

(* --- Refine.Eval --------------------------------------------------------- *)

let test_eval_unknown_signal_raises () =
  let workload = Sweep.Workload.fir ~n:16 () in
  let inst = workload.Sweep.Workload.make_instance () in
  check bool_t "apply_assigns on unknown signal raises" true
    (try
       Refine.Eval.apply_assigns inst.Sweep.Workload.env
         [ ("nonesuch", Fixpt.Dtype.make "T" ~n:8 ~f:6 ()) ];
       false
     with Invalid_argument _ -> true)

let test_sqnr_db_at_contract () =
  let workload = Sweep.Workload.fir ~n:16 () in
  let inst = workload.Sweep.Workload.make_instance () in
  let env = inst.Sweep.Workload.env in
  (* no samples yet: None, not an exception *)
  check bool_t "no samples -> None" true
    (Refine.Flow.sqnr_db_at env "out" = None);
  check bool_t "unknown signal -> raise" true
    (try
       ignore (Refine.Flow.sqnr_db_at env "nonesuch");
       false
     with Invalid_argument _ -> true)

(* --- generators ---------------------------------------------------------- *)

let specs =
  [
    { Sweep.Candidate.signal = "a"; int_bits = 2 };
    { Sweep.Candidate.signal = "b"; int_bits = 3 };
  ]

let fake_metrics sqnr =
  {
    Refine.Eval.sqnr_db = Some sqnr;
    total_bits = 0;
    overflow_count = 0;
    probe_err_max = 0.0;
    probe_values = None;
    probe_err = None;
    counters = None;
  }

let test_grid_enumeration () =
  let g = Sweep.Generator.grid ~specs ~f_min:3 ~f_max:5 ~seeds:[ 0; 1 ] in
  let wave = Sweep.Generator.next g [] in
  check int_t "3 fs x 2 seeds" 6 (List.length wave);
  (* f-major, seed-minor, dense ids from 0 *)
  List.iteri
    (fun i (c : Sweep.Candidate.t) ->
      check int_t "dense id" i c.Sweep.Candidate.id;
      check int_t "seed order" (i mod 2) c.Sweep.Candidate.stim_seed;
      check bool_t "f order" true
        (c.Sweep.Candidate.uniform_f = Some (3 + (i / 2))))
    wave;
  (* n = int_bits + f for every assign *)
  let c0 = List.hd wave in
  List.iter2
    (fun (s : Sweep.Candidate.spec) (a : Sweep.Candidate.assign) ->
      check int_t "n = int_bits + f" (s.Sweep.Candidate.int_bits + 3)
        a.Sweep.Candidate.n)
    specs c0.Sweep.Candidate.assigns;
  check int_t "single wave" 0
    (List.length (Sweep.Generator.next g (List.map (fun c -> (c, fake_metrics 0.0)) wave)))

(* Drive a generator with a synthetic SQNR model: 6 dB per fractional
   bit, the textbook quantization slope. *)
let drive gen sqnr_of_f =
  let rec loop prev acc =
    match Sweep.Generator.next gen prev with
    | [] -> List.rev acc
    | wave ->
        let results =
          List.map
            (fun (c : Sweep.Candidate.t) ->
              let f = Option.get c.Sweep.Candidate.uniform_f in
              (c, fake_metrics (sqnr_of_f f)))
            wave
        in
        loop results (List.rev_append results acc)
  in
  loop [] []

let test_bisect_converges () =
  let gen =
    Sweep.Generator.bisect ~specs ~f_min:2 ~f_max:12 ~target_db:40.0
      ~seeds:[ 0 ]
  in
  let _ = drive gen (fun f -> 6.0 *. float_of_int f) in
  let concl = Sweep.Generator.conclusion gen in
  (* 6f >= 40 first at f = 7 *)
  check string_t "minimal feasible f" "7" (List.assoc "selected_f" concl);
  check string_t "meets target" "true" (List.assoc "meets_target" concl)

let test_bisect_infeasible () =
  let gen =
    Sweep.Generator.bisect ~specs ~f_min:2 ~f_max:6 ~target_db:1000.0
      ~seeds:[ 0 ]
  in
  let results = drive gen (fun f -> 6.0 *. float_of_int f) in
  let concl = Sweep.Generator.conclusion gen in
  check string_t "pinned at f_max" "6" (List.assoc "selected_f" concl);
  check string_t "reported infeasible" "false"
    (List.assoc "meets_target" concl);
  (* never evaluated outside [f_min, f_max] *)
  List.iter
    (fun ((c : Sweep.Candidate.t), _) ->
      let f = Option.get c.Sweep.Candidate.uniform_f in
      check bool_t "f in range" true (f >= 2 && f <= 6))
    results

let test_pareto_front () =
  let mk id bits sqnr =
    ( { Sweep.Candidate.id; assigns = [ { signal = "a"; n = bits; f = 0 } ];
        stim_seed = 0; uniform_f = Some 0 },
      fake_metrics sqnr )
  in
  (* (8,20) dominates (9,18); (8,20) and (12,30) are both optimal *)
  let front =
    Sweep.Generator.pareto_front [ mk 0 8 20.0; mk 1 9 18.0; mk 2 12 30.0 ]
  in
  check int_t "dominated point dropped" 2 (List.length front);
  check bool_t "survivors" true
    (List.for_all
       (fun ((c : Sweep.Candidate.t), _) ->
         c.Sweep.Candidate.id = 0 || c.Sweep.Candidate.id = 2)
       front)

(* --- the pool's determinism contract ------------------------------------- *)

let run_sweep ~jobs =
  let workload = Sweep.Workload.fir ~n:64 () in
  let generator =
    Sweep.Generator.grid ~specs:workload.Sweep.Workload.specs ~f_min:4
      ~f_max:6 ~seeds:[ 0; 1 ]
  in
  Sweep.Pool.run ~jobs ~workload ~generator ()

let test_pool_jobs_deterministic () =
  let r1 = run_sweep ~jobs:1 and r2 = run_sweep ~jobs:2 in
  check string_t "jobs=1 and jobs=2 byte-identical"
    (Sweep.Report.to_json r1) (Sweep.Report.to_json r2)

let test_pool_budget () =
  let workload = Sweep.Workload.fir ~n:64 () in
  let generator =
    Sweep.Generator.grid ~specs:workload.Sweep.Workload.specs ~f_min:4
      ~f_max:8 ~seeds:[ 0; 1 ]
  in
  let r = Sweep.Pool.run ~budget:3 ~workload ~generator () in
  check int_t "budget truncates" 3 (List.length r.Sweep.Report.entries)

let test_pool_sqnr_monotone () =
  (* more fractional bits, better SQNR — on the real workload *)
  let r = run_sweep ~jobs:1 in
  let by_f f =
    List.filter_map
      (fun (e : Sweep.Report.entry) ->
        if e.Sweep.Report.candidate.Sweep.Candidate.uniform_f = Some f then
          e.Sweep.Report.metrics.Refine.Eval.sqnr_db
        else None)
      r.Sweep.Report.entries
  in
  let worst f = List.fold_left Float.min Float.infinity (by_f f) in
  check bool_t "sqnr grows with f" true (worst 6 > worst 5 && worst 5 > worst 4)

(* --- checkpoint / resume -------------------------------------------------- *)

let scratch =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fxsweep-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* Count real evaluations via the one per-candidate call both the
   interpreter and the compiled paths make. *)
let counting_workload counter (w : Sweep.Workload.t) =
  {
    w with
    Sweep.Workload.make_instance =
      (fun () ->
        let inst = w.Sweep.Workload.make_instance () in
        {
          inst with
          Sweep.Workload.set_seed =
            (fun s ->
              incr counter;
              inst.Sweep.Workload.set_seed s);
        });
  }

let ckpt_key =
  Sweep.Checkpoint.sweep_key ~workload:"fir-64" ~strategy:"bisect"
    ~context:"fxeval/test"
    [ ("f_min", "2"); ("f_max", "8"); ("seeds", "2") ]

(* A multi-wave bisect sweep (one 2-candidate wave per midpoint), with
   an optional checkpoint over [dir] and an optional evaluation
   counter. *)
let ckpt_sweep ?counter ?checkpoint () =
  let workload = Sweep.Workload.fir ~n:64 () in
  let workload =
    match counter with
    | None -> workload
    | Some c -> counting_workload c workload
  in
  let generator =
    Sweep.Generator.bisect ~specs:workload.Sweep.Workload.specs ~f_min:2
      ~f_max:8 ~target_db:40.0 ~seeds:[ 0; 1 ]
  in
  Sweep.Report.to_json
    (Sweep.Pool.run ~jobs:1 ?checkpoint ~workload ~generator ())

let test_checkpoint_resume_identical () =
  let dir = scratch () in
  let reference = ckpt_sweep () in
  (* fresh checkpointed run: journals every wave, changes no bytes *)
  let cp1 = Sweep.Checkpoint.create ~dir ~key:ckpt_key () in
  check string_t "checkpointing is byte-transparent" reference
    (ckpt_sweep ~checkpoint:cp1 ());
  check bool_t "multiple waves journaled" true
    (Sweep.Checkpoint.waves cp1 >= 2);
  (* resume: every wave replays, zero re-evaluations, same bytes *)
  let n = ref 0 in
  let cp2 = Sweep.Checkpoint.create ~resume:true ~dir ~key:ckpt_key () in
  check string_t "resumed report byte-identical" reference
    (ckpt_sweep ~counter:n ~checkpoint:cp2 ());
  check int_t "resume re-evaluated nothing" 0 !n;
  let waves, candidates = Sweep.Checkpoint.replayed cp2 in
  check int_t "every wave replayed" (Sweep.Checkpoint.waves cp1) waves;
  check bool_t "candidates accounted" true (candidates = 2 * waves)

let wave_files cp =
  Sys.readdir (Sweep.Checkpoint.dir cp)
  |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".wv")
  |> List.sort compare

let test_checkpoint_partial_resume () =
  let dir = scratch () in
  let reference = ckpt_sweep () in
  let cp1 = Sweep.Checkpoint.create ~dir ~key:ckpt_key () in
  ignore (ckpt_sweep ~checkpoint:cp1 ());
  (* lose the last journaled wave — as a kill between waves would *)
  (match List.rev (wave_files cp1) with
  | last :: _ ->
      Sys.remove (Filename.concat (Sweep.Checkpoint.dir cp1) last)
  | [] -> Alcotest.fail "no wave files journaled");
  let n = ref 0 in
  let cp2 = Sweep.Checkpoint.create ~resume:true ~dir ~key:ckpt_key () in
  check string_t "partial resume byte-identical" reference
    (ckpt_sweep ~counter:n ~checkpoint:cp2 ());
  check int_t "only the missing wave re-evaluated" 2 !n

let test_checkpoint_corrupt_wave_reevaluated () =
  let dir = scratch () in
  let reference = ckpt_sweep () in
  let cp1 = Sweep.Checkpoint.create ~dir ~key:ckpt_key () in
  ignore (ckpt_sweep ~checkpoint:cp1 ());
  (* flip one byte in the first wave record: strict decoding must treat
     it as not-journaled, never replay damaged metrics *)
  (match wave_files cp1 with
  | first :: _ ->
      let path = Filename.concat (Sweep.Checkpoint.dir cp1) first in
      let raw =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let b = Bytes.of_string raw in
      let off = Bytes.length b / 2 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x04));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc
  | [] -> Alcotest.fail "no wave files journaled");
  let n = ref 0 in
  let cp2 = Sweep.Checkpoint.create ~resume:true ~dir ~key:ckpt_key () in
  check string_t "corrupt wave re-evaluated, bytes identical" reference
    (ckpt_sweep ~counter:n ~checkpoint:cp2 ());
  check bool_t "damage cost time, not correctness" true (!n >= 2)

let test_checkpoint_rejects_counters () =
  let dir = scratch () in
  let workload = Sweep.Workload.fir ~n:64 () in
  let generator =
    Sweep.Generator.grid ~specs:workload.Sweep.Workload.specs ~f_min:4
      ~f_max:5 ~seeds:[ 0 ]
  in
  let cp = Sweep.Checkpoint.create ~dir ~key:ckpt_key () in
  check bool_t "counter sweeps cannot checkpoint" true
    (try
       ignore
         (Sweep.Pool.run ~counters:true ~checkpoint:cp ~workload ~generator ());
       false
     with Invalid_argument _ -> true)

let suite =
  ( "sweep",
    [
      Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
      Alcotest.test_case "snapshot shape mismatch" `Quick
        test_snapshot_shape_mismatch;
      Alcotest.test_case "eval unknown signal" `Quick
        test_eval_unknown_signal_raises;
      Alcotest.test_case "sqnr_db_at contract" `Quick test_sqnr_db_at_contract;
      Alcotest.test_case "grid enumeration" `Quick test_grid_enumeration;
      Alcotest.test_case "bisect converges" `Quick test_bisect_converges;
      Alcotest.test_case "bisect infeasible" `Quick test_bisect_infeasible;
      Alcotest.test_case "pareto front" `Quick test_pareto_front;
      Alcotest.test_case "pool jobs determinism" `Quick
        test_pool_jobs_deterministic;
      Alcotest.test_case "pool budget" `Quick test_pool_budget;
      Alcotest.test_case "pool sqnr monotone" `Quick test_pool_sqnr_monotone;
      Alcotest.test_case "checkpoint resume identical" `Quick
        test_checkpoint_resume_identical;
      Alcotest.test_case "checkpoint partial resume" `Quick
        test_checkpoint_partial_resume;
      Alcotest.test_case "checkpoint corrupt wave" `Quick
        test_checkpoint_corrupt_wave_reevaluated;
      Alcotest.test_case "checkpoint rejects counters" `Quick
        test_checkpoint_rejects_counters;
    ] )
