(* Unit + property tests: Quantize — the cast every assignment performs. *)

open Fixrefine.Fixpt

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-12

let dt ?(n = 8) ?(f = 6) ?(overflow = Overflow_mode.Wrap)
    ?(round = Round_mode.Round) () =
  Dtype.make "t" ~n ~f ~overflow ~round ()

let test_exact_passthrough () =
  let d = dt () in
  check float_t "grid value unchanged" 0.5 (Quantize.cast d 0.5);
  check float_t "negative grid" (-1.25) (Quantize.cast d (-1.25))

let test_round_nearest () =
  let d = dt () in
  (* step = 1/64 = 0.015625 *)
  check float_t "rounds up" 0.015625 (Quantize.cast d 0.012);
  check float_t "rounds down" 0.0 (Quantize.cast d 0.007)

let test_round_half_away () =
  let d = dt () in
  check float_t "+half away" 0.03125 (Quantize.cast d 0.0234375);
  check float_t "-half away" (-0.03125) (Quantize.cast d (-0.0234375))

let test_floor () =
  let d = dt ~round:Round_mode.Floor () in
  check float_t "floors positive" 0.0 (Quantize.cast d 0.0155);
  check float_t "floors negative" (-0.015625) (Quantize.cast d (-0.0001))

let test_saturate () =
  let d = dt ~overflow:Overflow_mode.Saturate () in
  check float_t "clamps high" (2.0 -. 0.015625) (Quantize.cast d 5.0);
  check float_t "clamps low" (-2.0) (Quantize.cast d (-7.0))

let test_wrap () =
  let d = dt ~overflow:Overflow_mode.Wrap () in
  (* range [-2, 2): 2.0 wraps to -2.0; 2.5 wraps to -1.5 *)
  check float_t "wrap at boundary" (-2.0) (Quantize.cast d 2.0);
  check float_t "wrap" (-1.5) (Quantize.cast d 2.5);
  check float_t "wrap low" 1.5 (Quantize.cast d (-2.5))

let test_error_mode_reports () =
  let d = dt ~overflow:Overflow_mode.Error () in
  let out = Quantize.quantize d 3.0 in
  check bool_t "overflow reported" true (out.Quantize.overflow <> None);
  (match out.Quantize.overflow with
  | Some ev ->
      check bool_t "direction above" true (ev.Quantize.direction = `Above)
  | None -> ());
  let ok = Quantize.quantize d 1.5 in
  check bool_t "no overflow in range" true (ok.Quantize.overflow = None)

let test_rounding_error_field () =
  let d = dt () in
  let out = Quantize.quantize d 0.012 in
  check float_t "rounding error" (0.015625 -. 0.012)
    out.Quantize.rounding_error

let test_unsigned () =
  let d = Dtype.make "u" ~n:4 ~f:2 ~sign:Sign_mode.Us () in
  check float_t "in range" 2.25 (Quantize.cast d 2.25);
  let sat = Dtype.with_overflow d Overflow_mode.Saturate in
  check float_t "clamps at 0" 0.0 (Quantize.cast sat (-1.0));
  check float_t "clamps at max" 3.75 (Quantize.cast sat 9.0)

let test_infinity_saturates () =
  let d = dt ~overflow:Overflow_mode.Saturate () in
  check float_t "+inf" (2.0 -. 0.015625) (Quantize.cast d Float.infinity);
  check float_t "-inf" (-2.0) (Quantize.cast d Float.neg_infinity)

let test_nan_rejected () =
  let d = dt () in
  Alcotest.check_raises "nan" (Invalid_argument "Quantize.quantize: nan")
    (fun () -> ignore (Quantize.cast d Float.nan))

let test_huge_value_saturates () =
  (* the float fallback path for range-explosion magnitudes *)
  let d = dt ~overflow:Overflow_mode.Saturate () in
  check float_t "1e30 clamps" (2.0 -. 0.015625) (Quantize.cast d 1.0e30)

let test_noise_model () =
  let d = dt () in
  let q, mean, var = Quantize.noise_model d in
  check float_t "step" 0.015625 q;
  check float_t "round mean" 0.0 mean;
  check float_t "variance q^2/12" (q *. q /. 12.0) var;
  let fl = dt ~round:Round_mode.Floor () in
  let _, mean_f, _ = Quantize.noise_model fl in
  check float_t "floor mean" (-.q /. 2.0) mean_f

(* properties *)

let gen_value = QCheck2.Gen.float_range (-1000.0) 1000.0

let prop_result_representable =
  QCheck2.Test.make ~name:"quantize output is representable" ~count:1000
    QCheck2.Gen.(triple gen_value (int_range 2 24) (int_range (-4) 20))
    (fun (v, n, f) ->
      let d = dt ~n ~f ~overflow:Overflow_mode.Saturate () in
      let out = Quantize.cast d v in
      Qformat.is_exact (Dtype.fmt d) out)

let prop_round_error_bounded =
  QCheck2.Test.make ~name:"in-range rounding error <= step/2" ~count:1000
    (QCheck2.Gen.float_range (-1.9) 1.9)
    (fun v ->
      let d = dt () in
      let out = Quantize.quantize d v in
      out.Quantize.overflow <> None
      || Float.abs (out.Quantize.value -. v) <= 0.015625 /. 2.0 +. 1e-12)

let prop_floor_error_negative =
  QCheck2.Test.make ~name:"floor error in (-step, 0]" ~count:1000
    (QCheck2.Gen.float_range (-1.9) 1.9)
    (fun v ->
      let d = dt ~round:Round_mode.Floor () in
      let out = Quantize.quantize d v in
      out.Quantize.overflow <> None
      ||
      let e = out.Quantize.value -. v in
      e <= 1e-12 && e > -0.015625)

let prop_idempotent =
  QCheck2.Test.make ~name:"quantize is idempotent" ~count:1000
    QCheck2.Gen.(pair gen_value (int_range 2 20))
    (fun (v, n) ->
      let d = dt ~n ~f:(n - 2) ~overflow:Overflow_mode.Saturate () in
      let once = Quantize.cast d v in
      Quantize.cast d once = once)

let prop_monotone_saturating =
  QCheck2.Test.make ~name:"saturating quantization is monotone" ~count:1000
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      let d = dt ~overflow:Overflow_mode.Saturate () in
      let lo = Float.min a b and hi = Float.max a b in
      Quantize.cast d lo <= Quantize.cast d hi)

let prop_wrap_congruent =
  QCheck2.Test.make ~name:"wrap result congruent mod span" ~count:1000
    (QCheck2.Gen.float_range (-100.0) 100.0)
    (fun v ->
      let d = dt ~round:Round_mode.Floor () in
      let out = Quantize.cast d v in
      let span = 4.0 (* <8,6>: [-2,2) *) in
      let diff = Float.floor (v /. 0.015625) *. 0.015625 -. out in
      Float.abs (Float.rem diff span) < 1e-9
      || Float.abs (Float.abs (Float.rem diff span) -. span) < 1e-9)

let suite =
  ( "quantize",
    [
      Alcotest.test_case "exact passthrough" `Quick test_exact_passthrough;
      Alcotest.test_case "round nearest" `Quick test_round_nearest;
      Alcotest.test_case "round half away" `Quick test_round_half_away;
      Alcotest.test_case "floor" `Quick test_floor;
      Alcotest.test_case "saturate" `Quick test_saturate;
      Alcotest.test_case "wrap" `Quick test_wrap;
      Alcotest.test_case "error mode reports" `Quick test_error_mode_reports;
      Alcotest.test_case "rounding error field" `Quick
        test_rounding_error_field;
      Alcotest.test_case "unsigned" `Quick test_unsigned;
      Alcotest.test_case "infinity saturates" `Quick test_infinity_saturates;
      Alcotest.test_case "nan rejected" `Quick test_nan_rejected;
      Alcotest.test_case "huge value saturates" `Quick
        test_huge_value_saturates;
      Alcotest.test_case "noise model" `Quick test_noise_model;
      Test_support.Qseed.to_alcotest prop_result_representable;
      Test_support.Qseed.to_alcotest prop_round_error_bounded;
      Test_support.Qseed.to_alcotest prop_floor_error_negative;
      Test_support.Qseed.to_alcotest prop_idempotent;
      Test_support.Qseed.to_alcotest prop_monotone_saturating;
      Test_support.Qseed.to_alcotest prop_wrap_congruent;
    ] )
