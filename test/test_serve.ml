(* Unit tests: the refinement-as-a-service layer — cache key hashing
   (injectivity on distinct canonical content, stability across runs),
   the bit-exact metrics codec, the persistent content-addressed store
   (cold/warm byte equality, FIFO eviction, corrupted-entry recovery),
   the wire framing, and a daemon/client round trip over a real
   socket. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let scratch =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fxserve-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* --- cache keys ---------------------------------------------------------- *)

let key_of ?(design = "{\"nodes\": []}") ?(assigns = []) ?(probe = Some "out")
    ?(seed = 0) ?(cycles = 128) ?(context = "fxeval/test") () =
  Refine.Eval.cache_key ~design ~assigns ~probe ~seed ~cycles ~context

let test_key_stable_across_runs () =
  (* pin one digest: any drift silently invalidates every persisted
     cache in the wild, so it must be a conscious, visible change *)
  check string_t "pinned digest" "5c7b277267e492ef6b08f232e87f172f"
    (key_of ());
  check string_t "recomputation is identical" (key_of ()) (key_of ())

let test_key_sensitive_to_every_field () =
  let base = key_of () in
  let dt = Fixpt.Dtype.make "T" ~n:8 ~f:6 () in
  check bool_t "design changes key" true
    (base <> key_of ~design:"{\"nodes\": [1]}" ());
  check bool_t "assigns change key" true
    (base <> key_of ~assigns:[ ("x", dt) ] ());
  check bool_t "probe changes key" true (base <> key_of ~probe:None ());
  check bool_t "seed changes key" true (base <> key_of ~seed:1 ());
  check bool_t "cycles change key" true (base <> key_of ~cycles:256 ());
  check bool_t "context changes key" true
    (base <> key_of ~context:"fxeval/other" ())

(* Injectivity on distinct canonical JSON (up to MD5 collisions, which
   the generator cannot hit): distinct design strings must give
   distinct keys, and equal ones equal keys — across many random
   shapes, not just the handful above. *)
let prop_key_injective =
  QCheck2.Test.make ~name:"cache key injective on distinct canonical JSON"
    ~count:300
    QCheck2.Gen.(
      pair
        (pair small_nat (list_size (int_range 0 4) (int_range 0 100)))
        (pair small_nat (list_size (int_range 0 4) (int_range 0 100))))
    (fun ((s1, l1), (s2, l2)) ->
      let design (s, l) =
        Printf.sprintf "{\"seed\": %d, \"nodes\": [%s]}" s
          (String.concat ", " (List.map string_of_int l))
      in
      let d1 = design (s1, l1) and d2 = design (s2, l2) in
      let k1 = key_of ~design:d1 () and k2 = key_of ~design:d2 () in
      if String.equal d1 d2 then String.equal k1 k2
      else not (String.equal k1 k2))

(* --- codec --------------------------------------------------------------- *)

let gen_special_float =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.float;
      QCheck2.Gen.oneofl
        [ 0.0; -0.0; Float.infinity; Float.neg_infinity; 1e-310; 0.1 ];
    ]

let gen_metrics =
  QCheck2.Gen.(
    let* sqnr = option gen_special_float in
    let* bits = int_range 0 500 in
    let* ovf = int_range 0 10000 in
    let* errmax = gen_special_float in
    let* samples = list_size (int_range 0 20) gen_special_float in
    let* with_monitors = bool in
    let pv, pe =
      if with_monitors then begin
        let r = Stats.Running.create () in
        let e = Stats.Err_stats.create () in
        List.iter
          (fun v ->
            Stats.Running.add r v;
            Stats.Err_stats.record e ~consumed:(v /. 3.0) ~produced:v)
          samples;
        (Some r, Some e)
      end
      else (None, None)
    in
    return
      {
        Refine.Eval.sqnr_db = sqnr;
        total_bits = bits;
        overflow_count = ovf;
        probe_err_max = errmax;
        probe_values = pv;
        probe_err = pe;
        counters = None;
      })

let float_identical a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let running_identical a b =
  let ra = Stats.Running.raw a and rb = Stats.Running.raw b in
  Array.length ra = Array.length rb
  && Array.for_all2 float_identical ra rb

let metrics_identical (a : Refine.Eval.metrics) (b : Refine.Eval.metrics) =
  (match (a.Refine.Eval.sqnr_db, b.Refine.Eval.sqnr_db) with
  | None, None -> true
  | Some x, Some y -> float_identical x y
  | _ -> false)
  && a.Refine.Eval.total_bits = b.Refine.Eval.total_bits
  && a.Refine.Eval.overflow_count = b.Refine.Eval.overflow_count
  && float_identical a.Refine.Eval.probe_err_max b.Refine.Eval.probe_err_max
  && (match (a.Refine.Eval.probe_values, b.Refine.Eval.probe_values) with
     | None, None -> true
     | Some x, Some y -> running_identical x y
     | _ -> false)
  &&
  match (a.Refine.Eval.probe_err, b.Refine.Eval.probe_err) with
  | None, None -> true
  | Some x, Some y ->
      Array.for_all2 float_identical (Stats.Err_stats.raw x)
        (Stats.Err_stats.raw y)
  | _ -> false

(* nan-tolerant bit-level round trip: every field, monitor state
   included, must come back bit-identical — the property that keeps
   warm reports byte-equal to cold ones. *)
let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec round-trips metrics bit-exactly" ~count:300
    gen_metrics (fun m ->
      match Serve.Codec.decode (Serve.Codec.encode m) with
      | Some m' -> metrics_identical m m'
      | None -> false)

let test_codec_rejects_garbage () =
  check bool_t "empty" true (Serve.Codec.decode "" = None);
  check bool_t "wrong header" true
    (Serve.Codec.decode "fxmetrics 99\nsqnr none\nbits 0\novf 0\nerrmax 0x0p+0\npv none\npe none"
    = None);
  check bool_t "truncated" true
    (Serve.Codec.decode "fxmetrics 1\nsqnr none\nbits 0" = None);
  check bool_t "bad monitor arity" true
    (Serve.Codec.decode
       "fxmetrics 1\nsqnr none\nbits 0\novf 0\nerrmax 0x0p+0\npv 0x0p+0\npe none"
    = None)

(* --- cache store --------------------------------------------------------- *)

let test_cache_memory_roundtrip () =
  let c = Serve.Cache.create () in
  check bool_t "miss on empty" true (Serve.Cache.lookup c "k" = None);
  Serve.Cache.insert c "k" "payload";
  check bool_t "hit after insert" true
    (Serve.Cache.lookup c "k" = Some "payload");
  let s = Serve.Cache.stats c in
  check int_t "one miss" 1 s.Serve.Cache.misses;
  check int_t "one hit" 1 s.Serve.Cache.hits;
  check int_t "one entry" 1 s.Serve.Cache.entries

let test_cache_persistence () =
  let dir = scratch () in
  let c1 = Serve.Cache.create ~dir () in
  Serve.Cache.insert c1 "aaaa" "first";
  Serve.Cache.insert c1 "bbbb" "second";
  (* a fresh cache value over the same directory sees the entries *)
  let c2 = Serve.Cache.create ~dir () in
  check int_t "entries reloaded" 2 (Serve.Cache.entry_count c2);
  check bool_t "payload intact" true
    (Serve.Cache.lookup c2 "aaaa" = Some "first");
  (* disk adoption on miss: an entry another cache value writes after
     this one's load scan is still found *)
  let c4 = Serve.Cache.create ~dir () in
  Serve.Cache.insert c1 "cccc" "third";
  check bool_t "cross-process adoption" true
    (Serve.Cache.lookup c4 "cccc" = Some "third")

let test_cache_eviction () =
  let c = Serve.Cache.create ~max_entries:2 () in
  Serve.Cache.insert c "k1" "v1";
  Serve.Cache.insert c "k2" "v2";
  Serve.Cache.insert c "k3" "v3";
  let s = Serve.Cache.stats c in
  check int_t "bounded" 2 s.Serve.Cache.entries;
  check int_t "one eviction" 1 s.Serve.Cache.evictions;
  (* FIFO: the oldest entry went *)
  check bool_t "oldest evicted" true (Serve.Cache.lookup c "k1" = None);
  check bool_t "newest kept" true (Serve.Cache.lookup c "k3" = Some "v3")

let test_cache_corrupt_recovery () =
  let dir = scratch () in
  let c1 = Serve.Cache.create ~dir () in
  Serve.Cache.insert c1 "good" "intact payload";
  Serve.Cache.insert c1 "trunc" "this one gets cut";
  (* truncate one entry file mid-payload, plant one alien file *)
  let path = Filename.concat dir "trunc.entry" in
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc (String.sub raw 0 (String.length raw - 5));
  close_out oc;
  let oc = open_out_bin (Filename.concat dir "alien.entry") in
  output_string oc "not a cache entry at all";
  close_out oc;
  let c2 = Serve.Cache.create ~dir () in
  let s = Serve.Cache.stats c2 in
  check int_t "only the intact entry survives" 1 s.Serve.Cache.entries;
  check int_t "both damaged files detected" 2 s.Serve.Cache.corrupt;
  check bool_t "damaged files deleted" true
    ((not (Sys.file_exists path))
    && not (Sys.file_exists (Filename.concat dir "alien.entry")));
  check bool_t "good entry readable" true
    (Serve.Cache.lookup c2 "good" = Some "intact payload");
  check bool_t "truncated key is a clean miss" true
    (Serve.Cache.lookup c2 "trunc" = None)

(* A flipped byte that keeps the length intact is invisible to the
   header's byte count — only the CRC-32 catches it.  The damaged key
   must heal as a clean miss and accept a re-insert. *)
let test_cache_crc_heal_on_read () =
  let dir = scratch () in
  let c1 = Serve.Cache.create ~dir () in
  Serve.Cache.insert c1 "rot" "bitrot target payload";
  let path = Filename.concat dir "rot.entry" in
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string raw in
  let off = Bytes.length b - 3 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x20));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  check bool_t "length unchanged" true
    (String.length raw = Bytes.length b);
  let c2 = Serve.Cache.create ~dir () in
  check bool_t "flipped payload is a clean miss" true
    (Serve.Cache.lookup c2 "rot" = None);
  check bool_t "damaged file deleted" true (not (Sys.file_exists path));
  check int_t "counted corrupt" 1 (Serve.Cache.stats c2).Serve.Cache.corrupt;
  Serve.Cache.insert c2 "rot" "fresh payload";
  check bool_t "key usable again after heal" true
    (Serve.Cache.lookup c2 "rot" = Some "fresh payload")

(* Decay behind a live cache's back: [scrub] re-reads every entry file,
   so corruption that happened after the load scan is still caught and
   dropped from the in-memory index too. *)
let test_cache_scrub () =
  let dir = scratch () in
  let c = Serve.Cache.create ~dir () in
  Serve.Cache.insert c "keep" "good";
  Serve.Cache.insert c "rotten" "about to decay";
  let path = Filename.concat dir "rotten.entry" in
  let oc = open_out_bin path in
  output_string oc "fxcache2 14 00000000\nabout to decay";
  close_out oc;
  let s = Serve.Cache.scrub c in
  check int_t "scanned both" 2 s.Serve.Cache.scanned;
  check int_t "one ok" 1 s.Serve.Cache.ok;
  check int_t "one healed" 1 s.Serve.Cache.healed;
  check bool_t "rotten dropped from memory too" true
    (Serve.Cache.lookup c "rotten" = None);
  check bool_t "rotten file deleted" true (not (Sys.file_exists path));
  check bool_t "clean entry untouched" true
    (Serve.Cache.lookup c "keep" = Some "good")

(* Fuzz the torn-write/bit-rot surface: truncate, flip or extend an
   entry file at a random offset — every subsequent lookup must be a
   clean miss (never a crash, never damaged data served), the file
   must be gone, and the damage must be counted. *)
let prop_torn_entry_clean_miss =
  let root = scratch () in
  let ctr = ref 0 in
  QCheck2.Test.make
    ~name:"torn/corrupted cache entries always heal as clean misses"
    ~count:150
    QCheck2.Gen.(
      triple
        (string_size (int_range 0 64))
        (int_range 0 2)
        (pair nat (int_range 1 255)))
    (fun (payload, mode, (off, x)) ->
      incr ctr;
      let dir = Filename.concat root (string_of_int !ctr) in
      let c1 = Serve.Cache.create ~dir () in
      Serve.Cache.insert c1 "fuzz" payload;
      let path = Filename.concat dir "fuzz.entry" in
      let raw =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let len = String.length raw in
      let damaged =
        match mode with
        | 0 -> String.sub raw 0 (off mod len) (* truncate: strictly shorter *)
        | 1 ->
            (* same-length byte flip at a random offset; x <> 0 *)
            let b = Bytes.of_string raw in
            let i = off mod len in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor x));
            Bytes.to_string b
        | _ -> raw ^ String.make (1 + (off mod 7)) 'Z' (* trailing garbage *)
      in
      let oc = open_out_bin path in
      output_string oc damaged;
      close_out oc;
      let c2 = Serve.Cache.create ~dir () in
      Serve.Cache.lookup c2 "fuzz" = None
      && (not (Sys.file_exists path))
      && (Serve.Cache.stats c2).Serve.Cache.corrupt = 1)

(* The CRC-32 itself: the classic IEEE 802.3 check vector, and strict
   hex parsing. *)
let test_crc32_vector () =
  check string_t "crc32(\"123456789\")" "cbf43926"
    (Serve.Crc32.to_hex (Serve.Crc32.digest "123456789"));
  check bool_t "of_hex round-trips" true
    (Serve.Crc32.of_hex "cbf43926"
    = Some (Serve.Crc32.digest "123456789"));
  check bool_t "of_hex rejects short" true (Serve.Crc32.of_hex "cbf4392" = None);
  check bool_t "of_hex rejects uppercase" true
    (Serve.Crc32.of_hex "CBF43926" = None);
  check bool_t "of_hex rejects non-hex" true
    (Serve.Crc32.of_hex "cbf4392g" = None)

(* --- job journal ---------------------------------------------------------- *)

let test_journal_lifecycle () =
  let dir = scratch () in
  let j = Serve.Journal.create ~dir in
  let name = Serve.Journal.fresh_name j in
  let e = { Serve.Journal.name; attempts = 1; line = "sweep request line" } in
  Serve.Journal.record_intent j e;
  (match Serve.Journal.pending j with
  | [ p ] ->
      check string_t "name preserved" name p.Serve.Journal.name;
      check int_t "attempts preserved" 1 p.Serve.Journal.attempts;
      check string_t "line verbatim" "sweep request line" p.Serve.Journal.line
  | l -> Alcotest.failf "expected one pending intent, got %d" (List.length l));
  (* rewriting with a bumped attempt count is the recovery WAL step *)
  Serve.Journal.record_intent j { e with Serve.Journal.attempts = 2 };
  (match Serve.Journal.pending j with
  | [ p ] -> check int_t "attempts bumped" 2 p.Serve.Journal.attempts
  | _ -> Alcotest.fail "intent lost on rewrite");
  Serve.Journal.mark_done j ~name;
  check int_t "done drops the intent" 0
    (List.length (Serve.Journal.pending j));
  (* quarantine keeps the record, under a different suffix *)
  let name2 = Serve.Journal.fresh_name j in
  let e2 = { Serve.Journal.name = name2; attempts = 3; line = "poison" } in
  Serve.Journal.record_intent j e2;
  Serve.Journal.quarantine j e2 ~reason:"retry budget exhausted";
  check int_t "quarantined job no longer pending" 0
    (List.length (Serve.Journal.pending j));
  check bool_t "quarantine file named" true
    (List.mem name2 (Serve.Journal.quarantined j));
  (* an unparsable intent is quarantined on sight, never re-run blind *)
  let oc = open_out_bin (Filename.concat dir "job-zz.intent") in
  output_string oc "not an intent record";
  close_out oc;
  check int_t "garbage intent not pending" 0
    (List.length (Serve.Journal.pending j));
  check bool_t "garbage intent quarantined" true
    (List.mem "zz" (Serve.Journal.quarantined j))

(* --- connect_retry failure taxonomy --------------------------------------- *)

let test_connect_retry_failures () =
  let dir = scratch () in
  (* no socket path at all: the daemon never started *)
  let missing = Filename.concat dir "never.sock" in
  (match
     Serve.Client.connect_retry ~attempts:3 ~base_delay_s:0.001 missing
   with
  | exception Serve.Client.Connect_failed { failure; attempts; _ } ->
      check bool_t "no-socket diagnosis" true
        (failure = Serve.Client.No_socket);
      check int_t "gave up after the budget" 3 attempts
  | _ -> Alcotest.fail "connect to a missing socket should fail");
  (* stale socket: the path exists but nothing is listening — a daemon
     that died without cleaning up *)
  let stale = Filename.concat dir "stale.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd (* closed without listen or unlink: refuses connections *);
  (match
     Serve.Client.connect_retry ~attempts:3 ~base_delay_s:0.001 stale
   with
  | exception Serve.Client.Connect_failed { failure; _ } ->
      check bool_t "stale-socket diagnosis" true
        (failure = Serve.Client.Stale_socket)
  | _ -> Alcotest.fail "connect to a stale socket should fail");
  check bool_t "attempts < 1 rejected" true
    (try
       ignore (Serve.Client.connect_retry ~attempts:0 missing);
       false
     with Invalid_argument _ -> true)

(* --- cold/warm sweep byte equality --------------------------------------- *)

let run_sweep ?cache () =
  let workload = Sweep.Workload.fir ~n:64 () in
  let specs = workload.Sweep.Workload.specs in
  let generator =
    Sweep.Generator.grid ~specs ~f_min:5 ~f_max:6 ~seeds:[ 0 ]
  in
  Sweep.Report.to_json (Sweep.Pool.run ~jobs:1 ?cache ~workload ~generator ())

let test_cold_warm_byte_equal () =
  let dir = scratch () in
  let reference = run_sweep () in
  let cold_cache = Serve.Cache.create ~dir () in
  let cold = run_sweep ~cache:(Serve.Codec.eval_cache cold_cache) () in
  let warm_cache = Serve.Cache.create ~dir () in
  let warm = run_sweep ~cache:(Serve.Codec.eval_cache warm_cache) () in
  check string_t "cache transparent" reference cold;
  check string_t "warm byte-identical" cold warm;
  let s = Serve.Cache.stats warm_cache in
  check int_t "warm run all hits" 2 s.Serve.Cache.hits;
  check int_t "warm run no misses" 0 s.Serve.Cache.misses

(* --- wire + protocol ------------------------------------------------------ *)

let test_wire_roundtrip () =
  let fields =
    [
      ("op", Serve.Wire.String "report");
      ("text", Serve.Wire.String "line1\nline2\t\"quoted\" \\ done");
      ("n", Serve.Wire.Int (-42));
      ("x", Serve.Wire.Float 0.5);
      ("ok", Serve.Wire.Bool true);
      ("nothing", Serve.Wire.Null);
    ]
  in
  let line = Serve.Wire.to_line fields in
  check bool_t "single line" true (not (String.contains line '\n'));
  match Serve.Wire.of_line line with
  | None -> Alcotest.fail "wire line did not parse"
  | Some fields' ->
      check bool_t "fields preserved in order" true (fields = fields');
      check bool_t "trailing garbage rejected" true
        (Serve.Wire.of_line (line ^ "x") = None);
      check bool_t "non-object rejected" true (Serve.Wire.of_line "[1]" = None)

let test_protocol_roundtrip () =
  let reqs =
    [
      Serve.Protocol.Ping { id = "a" };
      Serve.Protocol.Stats { id = "b" };
      Serve.Protocol.Shutdown { id = "c" };
      Serve.Protocol.Sweep
        {
          id = "d";
          params =
            {
              Serve.Protocol.workload = "fir";
              strategy = "bisect";
              f_min = 2;
              f_max = 10;
              seeds = 3;
              jobs = 2;
              budget = Some 7;
              target_db = 35.5;
              timeout_s = Some 1.25;
            };
        };
    ]
  in
  List.iter
    (fun r ->
      check bool_t "request round-trips" true
        (Serve.Protocol.request_of_line (Serve.Protocol.request_to_line r)
        = Some r))
    reqs;
  let resps =
    [
      Serve.Protocol.Pong { id = "a" };
      Serve.Protocol.Bye { id = "c" };
      Serve.Protocol.Error { id = "e"; message = "no \"such\" workload" };
      Serve.Protocol.Report
        { id = "d"; report = "{\n  \"k\": 1\n}\n"; hits = 3; misses = 4 };
      Serve.Protocol.Busy { id = ""; active = 64; limit = 64 };
    ]
  in
  List.iter
    (fun r ->
      check bool_t "response round-trips" true
        (Serve.Protocol.response_of_line (Serve.Protocol.response_to_line r)
        = Some r))
    resps

(* --- daemon round trip ---------------------------------------------------- *)

let test_daemon_roundtrip () =
  let dir = scratch () in
  let socket = Filename.concat dir "t.sock" in
  let daemon =
    Thread.create (fun () -> try Serve.Daemon.run ~socket () with _ -> ()) ()
  in
  let c = Serve.Client.connect_retry socket in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      check bool_t "ping" true
        (Serve.Client.request c (Serve.Protocol.Ping { id = "1" })
        = Serve.Protocol.Pong { id = "1" });
      (match
         Serve.Client.request c
           (Serve.Protocol.Sweep
              {
                id = "2";
                params =
                  {
                    Serve.Protocol.workload = "nonesuch";
                    strategy = "grid";
                    f_min = 4;
                    f_max = 5;
                    seeds = 1;
                    jobs = 1;
                    budget = None;
                    target_db = 40.0;
                    timeout_s = None;
                  };
              })
       with
      | Serve.Protocol.Error { id = "2"; _ } -> ()
      | _ -> Alcotest.fail "unknown workload should answer an error");
      check bool_t "shutdown acknowledged" true
        (Serve.Client.request c (Serve.Protocol.Shutdown { id = "3" })
        = Serve.Protocol.Bye { id = "3" }));
  Thread.join daemon;
  check bool_t "socket file removed" true (not (Sys.file_exists socket))

let suite =
  ( "serve",
    [
      Alcotest.test_case "key stable across runs" `Quick
        test_key_stable_across_runs;
      Alcotest.test_case "key sensitive to every field" `Quick
        test_key_sensitive_to_every_field;
      Test_support.Qseed.to_alcotest prop_key_injective;
      Test_support.Qseed.to_alcotest prop_codec_roundtrip;
      Alcotest.test_case "codec rejects garbage" `Quick
        test_codec_rejects_garbage;
      Alcotest.test_case "cache memory roundtrip" `Quick
        test_cache_memory_roundtrip;
      Alcotest.test_case "cache persistence" `Quick test_cache_persistence;
      Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
      Alcotest.test_case "cache corrupt recovery" `Quick
        test_cache_corrupt_recovery;
      Alcotest.test_case "cache CRC heal on read" `Quick
        test_cache_crc_heal_on_read;
      Alcotest.test_case "cache scrub" `Quick test_cache_scrub;
      Test_support.Qseed.to_alcotest prop_torn_entry_clean_miss;
      Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
      Alcotest.test_case "journal lifecycle" `Quick test_journal_lifecycle;
      Alcotest.test_case "connect_retry failures" `Quick
        test_connect_retry_failures;
      Alcotest.test_case "cold/warm byte equality" `Quick
        test_cold_warm_byte_equal;
      Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
      Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
      Alcotest.test_case "daemon roundtrip" `Quick test_daemon_roundtrip;
    ] )
