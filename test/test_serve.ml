(* Unit tests: the refinement-as-a-service layer — cache key hashing
   (injectivity on distinct canonical content, stability across runs),
   the bit-exact metrics codec, the persistent content-addressed store
   (cold/warm byte equality, FIFO eviction, corrupted-entry recovery),
   the wire framing, and a daemon/client round trip over a real
   socket. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let scratch =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "fxserve-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* --- cache keys ---------------------------------------------------------- *)

let key_of ?(design = "{\"nodes\": []}") ?(assigns = []) ?(probe = Some "out")
    ?(seed = 0) ?(cycles = 128) ?(context = "fxeval/test") () =
  Refine.Eval.cache_key ~design ~assigns ~probe ~seed ~cycles ~context

let test_key_stable_across_runs () =
  (* pin one digest: any drift silently invalidates every persisted
     cache in the wild, so it must be a conscious, visible change *)
  check string_t "pinned digest" "5c7b277267e492ef6b08f232e87f172f"
    (key_of ());
  check string_t "recomputation is identical" (key_of ()) (key_of ())

let test_key_sensitive_to_every_field () =
  let base = key_of () in
  let dt = Fixpt.Dtype.make "T" ~n:8 ~f:6 () in
  check bool_t "design changes key" true
    (base <> key_of ~design:"{\"nodes\": [1]}" ());
  check bool_t "assigns change key" true
    (base <> key_of ~assigns:[ ("x", dt) ] ());
  check bool_t "probe changes key" true (base <> key_of ~probe:None ());
  check bool_t "seed changes key" true (base <> key_of ~seed:1 ());
  check bool_t "cycles change key" true (base <> key_of ~cycles:256 ());
  check bool_t "context changes key" true
    (base <> key_of ~context:"fxeval/other" ())

(* Injectivity on distinct canonical JSON (up to MD5 collisions, which
   the generator cannot hit): distinct design strings must give
   distinct keys, and equal ones equal keys — across many random
   shapes, not just the handful above. *)
let prop_key_injective =
  QCheck2.Test.make ~name:"cache key injective on distinct canonical JSON"
    ~count:300
    QCheck2.Gen.(
      pair
        (pair small_nat (list_size (int_range 0 4) (int_range 0 100)))
        (pair small_nat (list_size (int_range 0 4) (int_range 0 100))))
    (fun ((s1, l1), (s2, l2)) ->
      let design (s, l) =
        Printf.sprintf "{\"seed\": %d, \"nodes\": [%s]}" s
          (String.concat ", " (List.map string_of_int l))
      in
      let d1 = design (s1, l1) and d2 = design (s2, l2) in
      let k1 = key_of ~design:d1 () and k2 = key_of ~design:d2 () in
      if String.equal d1 d2 then String.equal k1 k2
      else not (String.equal k1 k2))

(* --- codec --------------------------------------------------------------- *)

let gen_special_float =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.float;
      QCheck2.Gen.oneofl
        [ 0.0; -0.0; Float.infinity; Float.neg_infinity; 1e-310; 0.1 ];
    ]

let gen_metrics =
  QCheck2.Gen.(
    let* sqnr = option gen_special_float in
    let* bits = int_range 0 500 in
    let* ovf = int_range 0 10000 in
    let* errmax = gen_special_float in
    let* samples = list_size (int_range 0 20) gen_special_float in
    let* with_monitors = bool in
    let pv, pe =
      if with_monitors then begin
        let r = Stats.Running.create () in
        let e = Stats.Err_stats.create () in
        List.iter
          (fun v ->
            Stats.Running.add r v;
            Stats.Err_stats.record e ~consumed:(v /. 3.0) ~produced:v)
          samples;
        (Some r, Some e)
      end
      else (None, None)
    in
    return
      {
        Refine.Eval.sqnr_db = sqnr;
        total_bits = bits;
        overflow_count = ovf;
        probe_err_max = errmax;
        probe_values = pv;
        probe_err = pe;
        counters = None;
      })

let float_identical a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let running_identical a b =
  let ra = Stats.Running.raw a and rb = Stats.Running.raw b in
  Array.length ra = Array.length rb
  && Array.for_all2 float_identical ra rb

let metrics_identical (a : Refine.Eval.metrics) (b : Refine.Eval.metrics) =
  (match (a.Refine.Eval.sqnr_db, b.Refine.Eval.sqnr_db) with
  | None, None -> true
  | Some x, Some y -> float_identical x y
  | _ -> false)
  && a.Refine.Eval.total_bits = b.Refine.Eval.total_bits
  && a.Refine.Eval.overflow_count = b.Refine.Eval.overflow_count
  && float_identical a.Refine.Eval.probe_err_max b.Refine.Eval.probe_err_max
  && (match (a.Refine.Eval.probe_values, b.Refine.Eval.probe_values) with
     | None, None -> true
     | Some x, Some y -> running_identical x y
     | _ -> false)
  &&
  match (a.Refine.Eval.probe_err, b.Refine.Eval.probe_err) with
  | None, None -> true
  | Some x, Some y ->
      Array.for_all2 float_identical (Stats.Err_stats.raw x)
        (Stats.Err_stats.raw y)
  | _ -> false

(* nan-tolerant bit-level round trip: every field, monitor state
   included, must come back bit-identical — the property that keeps
   warm reports byte-equal to cold ones. *)
let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec round-trips metrics bit-exactly" ~count:300
    gen_metrics (fun m ->
      match Serve.Codec.decode (Serve.Codec.encode m) with
      | Some m' -> metrics_identical m m'
      | None -> false)

let test_codec_rejects_garbage () =
  check bool_t "empty" true (Serve.Codec.decode "" = None);
  check bool_t "wrong header" true
    (Serve.Codec.decode "fxmetrics 99\nsqnr none\nbits 0\novf 0\nerrmax 0x0p+0\npv none\npe none"
    = None);
  check bool_t "truncated" true
    (Serve.Codec.decode "fxmetrics 1\nsqnr none\nbits 0" = None);
  check bool_t "bad monitor arity" true
    (Serve.Codec.decode
       "fxmetrics 1\nsqnr none\nbits 0\novf 0\nerrmax 0x0p+0\npv 0x0p+0\npe none"
    = None)

(* --- cache store --------------------------------------------------------- *)

let test_cache_memory_roundtrip () =
  let c = Serve.Cache.create () in
  check bool_t "miss on empty" true (Serve.Cache.lookup c "k" = None);
  Serve.Cache.insert c "k" "payload";
  check bool_t "hit after insert" true
    (Serve.Cache.lookup c "k" = Some "payload");
  let s = Serve.Cache.stats c in
  check int_t "one miss" 1 s.Serve.Cache.misses;
  check int_t "one hit" 1 s.Serve.Cache.hits;
  check int_t "one entry" 1 s.Serve.Cache.entries

let test_cache_persistence () =
  let dir = scratch () in
  let c1 = Serve.Cache.create ~dir () in
  Serve.Cache.insert c1 "aaaa" "first";
  Serve.Cache.insert c1 "bbbb" "second";
  (* a fresh cache value over the same directory sees the entries *)
  let c2 = Serve.Cache.create ~dir () in
  check int_t "entries reloaded" 2 (Serve.Cache.entry_count c2);
  check bool_t "payload intact" true
    (Serve.Cache.lookup c2 "aaaa" = Some "first");
  (* disk adoption on miss: an entry another cache value writes after
     this one's load scan is still found *)
  let c4 = Serve.Cache.create ~dir () in
  Serve.Cache.insert c1 "cccc" "third";
  check bool_t "cross-process adoption" true
    (Serve.Cache.lookup c4 "cccc" = Some "third")

let test_cache_eviction () =
  let c = Serve.Cache.create ~max_entries:2 () in
  Serve.Cache.insert c "k1" "v1";
  Serve.Cache.insert c "k2" "v2";
  Serve.Cache.insert c "k3" "v3";
  let s = Serve.Cache.stats c in
  check int_t "bounded" 2 s.Serve.Cache.entries;
  check int_t "one eviction" 1 s.Serve.Cache.evictions;
  (* FIFO: the oldest entry went *)
  check bool_t "oldest evicted" true (Serve.Cache.lookup c "k1" = None);
  check bool_t "newest kept" true (Serve.Cache.lookup c "k3" = Some "v3")

let test_cache_corrupt_recovery () =
  let dir = scratch () in
  let c1 = Serve.Cache.create ~dir () in
  Serve.Cache.insert c1 "good" "intact payload";
  Serve.Cache.insert c1 "trunc" "this one gets cut";
  (* truncate one entry file mid-payload, plant one alien file *)
  let path = Filename.concat dir "trunc.entry" in
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc (String.sub raw 0 (String.length raw - 5));
  close_out oc;
  let oc = open_out_bin (Filename.concat dir "alien.entry") in
  output_string oc "not a cache entry at all";
  close_out oc;
  let c2 = Serve.Cache.create ~dir () in
  let s = Serve.Cache.stats c2 in
  check int_t "only the intact entry survives" 1 s.Serve.Cache.entries;
  check int_t "both damaged files detected" 2 s.Serve.Cache.corrupt;
  check bool_t "damaged files deleted" true
    ((not (Sys.file_exists path))
    && not (Sys.file_exists (Filename.concat dir "alien.entry")));
  check bool_t "good entry readable" true
    (Serve.Cache.lookup c2 "good" = Some "intact payload");
  check bool_t "truncated key is a clean miss" true
    (Serve.Cache.lookup c2 "trunc" = None)

(* --- cold/warm sweep byte equality --------------------------------------- *)

let run_sweep ?cache () =
  let workload = Sweep.Workload.fir ~n:64 () in
  let specs = workload.Sweep.Workload.specs in
  let generator =
    Sweep.Generator.grid ~specs ~f_min:5 ~f_max:6 ~seeds:[ 0 ]
  in
  Sweep.Report.to_json (Sweep.Pool.run ~jobs:1 ?cache ~workload ~generator ())

let test_cold_warm_byte_equal () =
  let dir = scratch () in
  let reference = run_sweep () in
  let cold_cache = Serve.Cache.create ~dir () in
  let cold = run_sweep ~cache:(Serve.Codec.eval_cache cold_cache) () in
  let warm_cache = Serve.Cache.create ~dir () in
  let warm = run_sweep ~cache:(Serve.Codec.eval_cache warm_cache) () in
  check string_t "cache transparent" reference cold;
  check string_t "warm byte-identical" cold warm;
  let s = Serve.Cache.stats warm_cache in
  check int_t "warm run all hits" 2 s.Serve.Cache.hits;
  check int_t "warm run no misses" 0 s.Serve.Cache.misses

(* --- wire + protocol ------------------------------------------------------ *)

let test_wire_roundtrip () =
  let fields =
    [
      ("op", Serve.Wire.String "report");
      ("text", Serve.Wire.String "line1\nline2\t\"quoted\" \\ done");
      ("n", Serve.Wire.Int (-42));
      ("x", Serve.Wire.Float 0.5);
      ("ok", Serve.Wire.Bool true);
      ("nothing", Serve.Wire.Null);
    ]
  in
  let line = Serve.Wire.to_line fields in
  check bool_t "single line" true (not (String.contains line '\n'));
  match Serve.Wire.of_line line with
  | None -> Alcotest.fail "wire line did not parse"
  | Some fields' ->
      check bool_t "fields preserved in order" true (fields = fields');
      check bool_t "trailing garbage rejected" true
        (Serve.Wire.of_line (line ^ "x") = None);
      check bool_t "non-object rejected" true (Serve.Wire.of_line "[1]" = None)

let test_protocol_roundtrip () =
  let reqs =
    [
      Serve.Protocol.Ping { id = "a" };
      Serve.Protocol.Stats { id = "b" };
      Serve.Protocol.Shutdown { id = "c" };
      Serve.Protocol.Sweep
        {
          id = "d";
          params =
            {
              Serve.Protocol.workload = "fir";
              strategy = "bisect";
              f_min = 2;
              f_max = 10;
              seeds = 3;
              jobs = 2;
              budget = Some 7;
              target_db = 35.5;
              timeout_s = Some 1.25;
            };
        };
    ]
  in
  List.iter
    (fun r ->
      check bool_t "request round-trips" true
        (Serve.Protocol.request_of_line (Serve.Protocol.request_to_line r)
        = Some r))
    reqs;
  let resps =
    [
      Serve.Protocol.Pong { id = "a" };
      Serve.Protocol.Bye { id = "c" };
      Serve.Protocol.Error { id = "e"; message = "no \"such\" workload" };
      Serve.Protocol.Report
        { id = "d"; report = "{\n  \"k\": 1\n}\n"; hits = 3; misses = 4 };
    ]
  in
  List.iter
    (fun r ->
      check bool_t "response round-trips" true
        (Serve.Protocol.response_of_line (Serve.Protocol.response_to_line r)
        = Some r))
    resps

(* --- daemon round trip ---------------------------------------------------- *)

let test_daemon_roundtrip () =
  let dir = scratch () in
  let socket = Filename.concat dir "t.sock" in
  let daemon =
    Thread.create (fun () -> try Serve.Daemon.run ~socket () with _ -> ()) ()
  in
  let c = Serve.Client.connect_retry socket in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      check bool_t "ping" true
        (Serve.Client.request c (Serve.Protocol.Ping { id = "1" })
        = Serve.Protocol.Pong { id = "1" });
      (match
         Serve.Client.request c
           (Serve.Protocol.Sweep
              {
                id = "2";
                params =
                  {
                    Serve.Protocol.workload = "nonesuch";
                    strategy = "grid";
                    f_min = 4;
                    f_max = 5;
                    seeds = 1;
                    jobs = 1;
                    budget = None;
                    target_db = 40.0;
                    timeout_s = None;
                  };
              })
       with
      | Serve.Protocol.Error { id = "2"; _ } -> ()
      | _ -> Alcotest.fail "unknown workload should answer an error");
      check bool_t "shutdown acknowledged" true
        (Serve.Client.request c (Serve.Protocol.Shutdown { id = "3" })
        = Serve.Protocol.Bye { id = "3" }));
  Thread.join daemon;
  check bool_t "socket file removed" true (not (Sys.file_exists socket))

let suite =
  ( "serve",
    [
      Alcotest.test_case "key stable across runs" `Quick
        test_key_stable_across_runs;
      Alcotest.test_case "key sensitive to every field" `Quick
        test_key_sensitive_to_every_field;
      Test_support.Qseed.to_alcotest prop_key_injective;
      Test_support.Qseed.to_alcotest prop_codec_roundtrip;
      Alcotest.test_case "codec rejects garbage" `Quick
        test_codec_rejects_garbage;
      Alcotest.test_case "cache memory roundtrip" `Quick
        test_cache_memory_roundtrip;
      Alcotest.test_case "cache persistence" `Quick test_cache_persistence;
      Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
      Alcotest.test_case "cache corrupt recovery" `Quick
        test_cache_corrupt_recovery;
      Alcotest.test_case "cold/warm byte equality" `Quick
        test_cold_warm_byte_equal;
      Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
      Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
      Alcotest.test_case "daemon roundtrip" `Quick test_daemon_roundtrip;
    ] )
