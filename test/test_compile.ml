(* Unit + conformance tests: the flat-schedule compiled executor.

   The contract under test is byte-equality: every node's value, at
   every step and lane, must be bit-identical between
   [Compile.run]/[Compile.traces] and the reference interpreter
   [Sfg.Graph.simulate] — across batch sizes, overflow/round modes and
   fault-plan replay.  Plus the satellite fixes this PR carries:
   [Engine.run_until] exit semantics, the [Wordlength.assign] LSB
   clamp, and [Extract.graph]'s missing-output error. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let bits = Int64.bits_of_float

(* Pure, NaN-free stimulus: a hash of (name, lane, step) scaled into
   (-2, 2) — lanes get genuinely different streams. *)
let stim name lane step =
  let h = Hashtbl.hash (name, lane, step * 7919) in
  Float.of_int ((h land 0xFFFF) - 0x8000) /. 16384.0

(* Compiled-vs-interpreted byte equality over every node, step, lane.
   [cinject]/[iinject] must encode the same fault function (per-lane
   curried for the interpreter). *)
let assert_traces_equal ~what ~batch ~steps ?cinject ?iinject g =
  let prog = Compile.compile ~batch g in
  let ct =
    Compile.traces ?inject:cinject prog ~steps ~inputs:(fun name ~lane step ->
        stim name lane step)
  in
  for lane = 0 to batch - 1 do
    let it =
      Sfg.Graph.simulate
        ?inject:(Option.map (fun f -> f lane) iinject)
        g ~steps
        ~inputs:(fun name step -> stim name lane step)
    in
    List.iter2
      (fun (cn, per_lane) (iname, itr) ->
        check Alcotest.string (what ^ ": node order") iname cn;
        let carr = per_lane.(lane) in
        Array.iteri
          (fun s iv ->
            if bits carr.(s) <> bits iv then
              Alcotest.failf
                "%s: node %s lane %d step %d: compiled %h <> interpreted %h"
                what cn lane s carr.(s) iv)
          itr)
      ct it
  done

(* A graph exercising every operator: arithmetic, shift, min/max,
   select, saturate, two quantization points, a feedback delay and a
   feed-forward delay line. *)
let zoo ~overflow ~round () =
  let dt1 = Fixpt.Dtype.make "T1" ~n:8 ~f:5 ~overflow ~round () in
  let dt2 = Fixpt.Dtype.make "T2" ~n:10 ~f:6 ~overflow ~round () in
  let g = Sfg.Graph.create () in
  let a = Sfg.Graph.input g "a" ~lo:(-2.0) ~hi:2.0 in
  let b = Sfg.Graph.input g "b" ~lo:(-2.0) ~hi:2.0 in
  let k = Sfg.Graph.const g ~name:"k" 0.8125 in
  let s = Sfg.Graph.add g a b in
  let d = Sfg.Graph.sub g s k in
  let m = Sfg.Graph.mul g d a in
  let den =
    Sfg.Graph.add g ~name:"den" (Sfg.Graph.abs g b)
      (Sfg.Graph.const g ~name:"c15" 1.5)
  in
  let q1 = Sfg.Graph.quantize g ~name:"q1" dt1 (Sfg.Graph.div g m den) in
  let mn = Sfg.Graph.min_ g q1 a in
  let mx = Sfg.Graph.max_ g mn (Sfg.Graph.neg g a) in
  let sh = Sfg.Graph.shift g mx (-2) in
  let sat = Sfg.Graph.saturate g ~name:"sat" sh ~lo:(-0.75) ~hi:0.75 in
  let acc = Sfg.Graph.delay g ~init:0.25 "acc" in
  let fb =
    Sfg.Graph.add g ~name:"fb" sat (Sfg.Graph.shift g ~name:"half" acc (-1))
  in
  let q2 = Sfg.Graph.quantize g ~name:"q2" dt2 fb in
  Sfg.Graph.connect_delay g acc q2;
  let sel = Sfg.Graph.select g a q2 sat in
  let y = Sfg.Graph.alias g ~name:"y" sel in
  ignore (Sfg.Graph.delay_of g "dline" y);
  Sfg.Graph.mark_output g "y" y;
  g

let mode_name ov rd =
  Printf.sprintf "%s/%s"
    (Fixpt.Overflow_mode.to_string ov)
    (Fixpt.Round_mode.to_string rd)

(* --- byte equality: modes × batch sizes -------------------------------- *)

let test_equality_modes_batches () =
  List.iter
    (fun overflow ->
      List.iter
        (fun round ->
          List.iter
            (fun batch ->
              assert_traces_equal
                ~what:
                  (Printf.sprintf "zoo %s B=%d" (mode_name overflow round)
                     batch)
                ~batch ~steps:48
                (zoo ~overflow ~round ()))
            [ 1; 4; 64 ])
        [ Fixpt.Round_mode.Round; Fixpt.Round_mode.Floor ])
    [ Fixpt.Overflow_mode.Wrap; Fixpt.Overflow_mode.Saturate ]

(* --- fault-plan replay under compilation ------------------------------- *)

(* The fault function both executors replay: SEU bitflips at the two
   quantization points, sign flips at the inputs — all drawn from a
   pure fault plan, so per-(name, lane, step) coordinates decide. *)
let test_fault_replay () =
  let plan = Fault.Plan.make ~seed:9 () in
  let dt_of = Hashtbl.create 4 in
  let g = zoo ~overflow:Fixpt.Overflow_mode.Saturate ~round:Fixpt.Round_mode.Round () in
  List.iter
    (fun (n : Sfg.Node.t) ->
      match n.Sfg.Node.op with
      | Sfg.Node.Quantize dt -> Hashtbl.replace dt_of n.Sfg.Node.name dt
      | _ -> ())
    (Sfg.Graph.nodes g);
  let fault lane ~name ~step v =
    let key = Printf.sprintf "%d:%s" lane name in
    match Hashtbl.find_opt dt_of name with
    | Some dt ->
        if Fault.Plan.fires plan ~stream:"seu" ~key ~index:step ~rate:0.15
        then
          let n = Fixpt.Dtype.n dt in
          let bit =
            let u = Fault.Plan.draw plan ~stream:"bit" ~key ~index:step in
            min (n - 1) (int_of_float (u *. Float.of_int n))
          in
          Fault.Inject.flip_bit dt ~bit v
        else v
    | None ->
        if Fault.Plan.fires plan ~stream:"neg" ~key ~index:step ~rate:0.1
        then -.v
        else v
  in
  List.iter
    (fun batch ->
      assert_traces_equal
        ~what:(Printf.sprintf "zoo faulted B=%d" batch)
        ~batch ~steps:48
        ~cinject:(fun ~name ~lane ~step v -> fault lane ~name ~step v)
        ~iinject:(fun lane -> fault lane)
        g)
    [ 1; 4; 64 ]

(* --- qcheck: batching never reorders per-vector outputs ---------------- *)

let qcheck_batch_no_reorder =
  QCheck_alcotest.to_alcotest
  @@ QCheck2.Test.make ~name:"batched lane = its own single-lane run"
       ~count:40
       QCheck2.Gen.(pair (int_range 1 9) (int_range 1 40))
       (fun (batch, steps) ->
         let g =
           zoo ~overflow:Fixpt.Overflow_mode.Wrap
             ~round:Fixpt.Round_mode.Floor ()
         in
         let prog = Compile.compile ~batch g in
         let batched =
           Compile.traces prog ~steps ~inputs:(fun name ~lane step ->
               stim name lane step)
         in
         let ok = ref true in
         for lane = 0 to batch - 1 do
           (* one lane alone, through a batch-1 program fed that lane's
              stimulus: must reproduce the batched lane bit-for-bit *)
           let single = Compile.compile ~batch:1 g in
           let st =
             Compile.traces single ~steps ~inputs:(fun name ~lane:_ step ->
                 stim name lane step)
           in
           List.iter2
             (fun (_, bl) (_, sl) ->
               Array.iteri
                 (fun s v -> if bits bl.(lane).(s) <> bits v then ok := false)
                 sl.(0))
             batched st
         done;
         !ok)

(* --- compiled candidate evaluation: metric parity with the env --------- *)

let fir_assigns =
  let dt name ~int_bits ~f =
    Fixpt.Dtype.make name
      ~n:(int_bits + f)
      ~f ~overflow:Fixpt.Overflow_mode.Saturate ~round:Fixpt.Round_mode.Round
      ()
  in
  [ ("x", dt "Tx" ~int_bits:2 ~f:7) ]
  @ List.init 5 (fun i ->
        (Printf.sprintf "d[%d]" i, dt "Td" ~int_bits:2 ~f:7))
  @ List.init 5 (fun i ->
        (Printf.sprintf "v[%d]" (i + 1), dt "Tv" ~int_bits:3 ~f:9))
  @ [ ("out", dt "To" ~int_bits:3 ~f:8) ]

let stats_equal what (a : Stats.Running.t) (b : Stats.Running.t) =
  check int_t (what ^ " count") (Stats.Running.count a)
    (Stats.Running.count b);
  List.iter
    (fun (field, fa, fb) ->
      if bits fa <> bits fb then
        Alcotest.failf "%s %s: %h <> %h" what field fa fb)
    [
      ("mean", Stats.Running.mean a, Stats.Running.mean b);
      ("variance", Stats.Running.variance a, Stats.Running.variance b);
      ("min", Stats.Running.min_value a, Stats.Running.min_value b);
      ("max", Stats.Running.max_value a, Stats.Running.max_value b);
    ]

let test_fir_compiled_metric_parity () =
  let w = Option.get (Sweep.Workload.find "fir") in
  let inst = w.Sweep.Workload.make_instance () in
  let ce = Option.get inst.Sweep.Workload.compiled in
  let probe = w.Sweep.Workload.probe in
  let eval_interp seed =
    Sim.Env.restore_into inst.Sweep.Workload.baseline inst.Sweep.Workload.env;
    inst.Sweep.Workload.set_seed seed;
    Refine.Eval.evaluate ~assigns:fir_assigns ~probe
      inst.Sweep.Workload.design
  in
  let eval_comp seed =
    Sim.Env.restore_into inst.Sweep.Workload.baseline inst.Sweep.Workload.env;
    inst.Sweep.Workload.set_seed seed;
    Refine.Eval.evaluate_compiled ~assigns:fir_assigns ~probe ~seed ce
      inst.Sweep.Workload.design
  in
  (* prove the compiled path actually compiles (no silent fallback):
     extraction closes, the program builds, the probe resolves *)
  Sim.Env.restore_into inst.Sweep.Workload.baseline inst.Sweep.Workload.env;
  Refine.Eval.apply_assigns inst.Sweep.Workload.env fir_assigns;
  inst.Sweep.Workload.design.Refine.Flow.reset ();
  let g = ce.Refine.Eval.extract () in
  let prog = Compile.compile ~dual:true g in
  check bool_t "probe node present" true (Compile.find prog probe <> None);
  List.iter
    (fun seed ->
      let mi = eval_interp seed in
      let mc = eval_comp seed in
      check int_t "total_bits" mi.Refine.Eval.total_bits
        mc.Refine.Eval.total_bits;
      check int_t "overflow_count" mi.Refine.Eval.overflow_count
        mc.Refine.Eval.overflow_count;
      (match (mi.Refine.Eval.sqnr_db, mc.Refine.Eval.sqnr_db) with
      | Some a, Some b when bits a = bits b -> ()
      | None, None -> ()
      | a, b ->
          Alcotest.failf "sqnr mismatch (seed %d): %s <> %s" seed
            (match a with Some v -> Printf.sprintf "%h" v | None -> "None")
            (match b with Some v -> Printf.sprintf "%h" v | None -> "None"));
      if bits mi.Refine.Eval.probe_err_max <> bits mc.Refine.Eval.probe_err_max
      then
        Alcotest.failf "probe_err_max (seed %d): %h <> %h" seed
          mi.Refine.Eval.probe_err_max mc.Refine.Eval.probe_err_max;
      stats_equal "probe values"
        (Option.get mi.Refine.Eval.probe_values)
        (Option.get mc.Refine.Eval.probe_values);
      stats_equal "produced err"
        (Stats.Err_stats.produced (Option.get mi.Refine.Eval.probe_err))
        (Stats.Err_stats.produced (Option.get mc.Refine.Eval.probe_err));
      stats_equal "consumed err"
        (Stats.Err_stats.consumed (Option.get mi.Refine.Eval.probe_err))
        (Stats.Err_stats.consumed (Option.get mc.Refine.Eval.probe_err)))
    [ 0; 1; 7 ]

(* --- conformance workloads: the full oracle gate ----------------------- *)

let test_conformance_gate () =
  let r = Oracle.Compile_check.run () in
  List.iter
    (fun (x : Oracle.Compile_check.result) ->
      if not x.Oracle.Compile_check.ok then
        Alcotest.failf "%s: %s" x.Oracle.Compile_check.name
          x.Oracle.Compile_check.detail)
    r.Oracle.Compile_check.results;
  check bool_t "gate covers all six workloads and the sweep" true
    (List.length r.Oracle.Compile_check.results >= 13)

(* --- satellite: run_until exit semantics ------------------------------- *)

let test_run_until_exits () =
  (* bound exit: exactly [max] step+tick pairs, result = ticks *)
  let env = Sim.Env.create ~seed:1 () in
  let steps = ref 0 in
  let n =
    Sim.Engine.run_until ~max:10 env (fun _ ->
        incr steps;
        true)
  in
  check int_t "bound exit: cycles" 10 n;
  check int_t "bound exit: step calls" 10 !steps;
  check int_t "bound exit: committed ticks" 10 (Sim.Env.time env);
  (* normal exit: step says stop at cycle 4, its tick still commits *)
  let env2 = Sim.Env.create ~seed:1 () in
  let n2 = Sim.Engine.run_until env2 (fun c -> c < 4) in
  check int_t "normal exit: cycles" 5 n2;
  check int_t "normal exit: committed ticks" 5 (Sim.Env.time env2)

(* --- satellite: Wordlength.assign LSB clamp ---------------------------- *)

let test_wordlength_lsb_clamp () =
  (* x * 1e150 * 1e150: the inner product node has noise gain 1e300 to
     the output; with a tiny budget, q underflows to exactly 0 and the
     unclamped log2 was -inf (unspecified int conversion) *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let m1 = Sfg.Graph.mul g ~name:"m1" x (Sfg.Graph.const g ~name:"k1" 1e150) in
  let m2 =
    Sfg.Graph.mul g ~name:"m2" m1 (Sfg.Graph.const g ~name:"k2" 1e150)
  in
  Sfg.Graph.mark_output g "y" (Sfg.Graph.alias g ~name:"y" m2);
  let r = Sfg.Wordlength.assign g ~output:"y" ~sigma_budget:1e-15 in
  List.iter
    (fun (a : Sfg.Wordlength.assignment) ->
      match a.Sfg.Wordlength.lsb with
      | Some l ->
          check bool_t
            (Printf.sprintf "%s lsb %d within float exponent range"
               a.Sfg.Wordlength.name l)
            true
            (l >= -1074 && l <= 1023)
      | None -> ())
    r.Sfg.Wordlength.assignments;
  let m1a =
    List.find
      (fun (a : Sfg.Wordlength.assignment) -> a.Sfg.Wordlength.name = "m1")
      r.Sfg.Wordlength.assignments
  in
  check bool_t "huge-gain node clamps to the subnormal floor" true
    (m1a.Sfg.Wordlength.lsb = Some (-1074))

let test_wordlength_inverted_total () =
  (* a tiny-range signal under a huge budget: msb < lsb — no
     representable width, so the total must refuse, not go negative *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1e-8) ~hi:1e-8 in
  let y = Sfg.Graph.add g ~name:"s" x x in
  Sfg.Graph.mark_output g "y" (Sfg.Graph.alias g ~name:"y" y);
  let r = Sfg.Wordlength.assign g ~output:"y" ~sigma_budget:1e6 in
  let inverted =
    List.exists
      (fun (a : Sfg.Wordlength.assignment) ->
        match (a.Sfg.Wordlength.msb, a.Sfg.Wordlength.lsb) with
        | Some m, Some l -> m < l
        | _ -> false)
      r.Sfg.Wordlength.assignments
  in
  check bool_t "setup produced an inverted format" true inverted;
  check bool_t "inverted format refuses a total" true
    (r.Sfg.Wordlength.total_bits = None)

(* --- satellite: Extract.graph missing-output error --------------------- *)

let test_extract_missing_output () =
  let env = Sim.Env.create ~seed:1 () in
  let x = Sim.Signal.create env "x" in
  let _y = Sim.Signal.create env "y" in
  match
    Sim.Extract.graph env ~outputs:[ "y" ]
      ~step:(fun () ->
        let open Sim.Ops in
        x <-- Sim.Value.of_float 0.5)
      ()
  with
  | _ -> Alcotest.fail "expected Invalid_argument for unassigned output"
  | exception Invalid_argument m ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      check bool_t "error names the output" true (contains m "\"y\"");
      check bool_t "error says never assigned" true
        (contains m "never assigned")

let suite =
  ( "compile",
    [
      Alcotest.test_case "byte equality: modes x batches" `Quick
        test_equality_modes_batches;
      Alcotest.test_case "byte equality under fault replay" `Quick
        test_fault_replay;
      qcheck_batch_no_reorder;
      Alcotest.test_case "fir compiled metrics = interpreted" `Quick
        test_fir_compiled_metric_parity;
      Alcotest.test_case "conformance workloads: compiled oracle gate"
        `Quick test_conformance_gate;
      Alcotest.test_case "run_until: both exits count committed ticks"
        `Quick test_run_until_exits;
      Alcotest.test_case "wordlength lsb clamps at float exponent range"
        `Quick test_wordlength_lsb_clamp;
      Alcotest.test_case "wordlength total rejects inverted formats" `Quick
        test_wordlength_inverted_total;
      Alcotest.test_case "extract: unassigned output raises" `Quick
        test_extract_missing_output;
    ] )
