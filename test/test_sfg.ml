(* Unit + property tests: Sfg — graph construction, interpretation, and
   the analytical range/noise analyses. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-9

(* feed-forward: y = 2x + 1 on x ∈ [-1, 1] *)
let ff_graph () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let two = Sfg.Graph.const g ~name:"two" 2.0 in
  let one = Sfg.Graph.const g ~name:"one" 1.0 in
  let p = Sfg.Graph.mul g ~name:"p" x two in
  let y = Sfg.Graph.add g ~name:"y" p one in
  Sfg.Graph.mark_output g "y" y;
  g

(* accumulator: acc' = acc + x — the §5.1 case-(b) pattern *)
let acc_graph () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let acc = Sfg.Graph.delay g "acc" in
  let sum = Sfg.Graph.add g ~name:"sum" acc x in
  Sfg.Graph.connect_delay g acc sum;
  Sfg.Graph.mark_output g "sum" sum;
  g

(* damped loop: acc' = 0.5·acc + x — converges to [-2, 2] *)
let damped_graph () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let acc = Sfg.Graph.delay g "acc" in
  let half = Sfg.Graph.const g 0.5 in
  let scaled = Sfg.Graph.mul g ~name:"scaled" acc half in
  let sum = Sfg.Graph.add g ~name:"sum" scaled x in
  Sfg.Graph.connect_delay g acc sum;
  g

let test_arity_checked () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:0.0 ~hi:1.0 in
  check bool_t "bad arity raises" true
    (try
       ignore (Sfg.Graph.fresh g ~name:"bad" ~op:Sfg.Node.Add ~inputs:[ x ]);
       false
     with Invalid_argument _ -> true)

let test_validate_pending_delay () =
  let g = Sfg.Graph.create () in
  let _ = Sfg.Graph.delay g "dangling" in
  check bool_t "invalid" true (Result.is_error (Sfg.Graph.validate g))

let test_simulate_ff () =
  let g = ff_graph () in
  let traces = Sfg.Graph.simulate g ~steps:3 ~inputs:(fun _ i -> Float.of_int i) in
  let y = List.assoc "y" traces in
  check float_t "y0" 1.0 y.(0);
  check float_t "y1" 3.0 y.(1);
  check float_t "y2" 5.0 y.(2)

let test_simulate_delay_semantics () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:0.0 ~hi:10.0 in
  let d = Sfg.Graph.delay_of g ~init:7.0 "d" x in
  Sfg.Graph.mark_output g "d" d;
  let traces = Sfg.Graph.simulate g ~steps:3 ~inputs:(fun _ i -> Float.of_int i) in
  let d = List.assoc "d" traces in
  check float_t "initial value at t0" 7.0 d.(0);
  check float_t "one-cycle delay" 0.0 d.(1);
  check float_t "one-cycle delay 2" 1.0 d.(2)

let test_simulate_feedback_accumulates () =
  let g = acc_graph () in
  let traces = Sfg.Graph.simulate g ~steps:4 ~inputs:(fun _ _ -> 1.0) in
  let sum = List.assoc "sum" traces in
  check float_t "t3" 4.0 sum.(3)

let test_range_ff_exact () =
  let r = Sfg.Range_analysis.run (ff_graph ()) in
  check bool_t "y = [-1, 3]" true
    (Sfg.Range_analysis.range_of r "y" = Some (Interval.make (-1.0) 3.0));
  check bool_t "fast fixpoint" true (r.Sfg.Range_analysis.iterations <= 3)

let test_range_accumulator_explodes () =
  let r = Sfg.Range_analysis.run (acc_graph ()) in
  check bool_t "explodes" true
    (List.mem "acc" r.Sfg.Range_analysis.exploded);
  check bool_t "terminates" true (r.Sfg.Range_analysis.iterations < 64)

let test_range_damped_converges () =
  let r = Sfg.Range_analysis.run ~widen_after:40 (damped_graph ()) in
  check bool_t "no explosion" true (r.Sfg.Range_analysis.exploded = []);
  match Sfg.Range_analysis.range_of r "sum" with
  | Some iv ->
      (* limit is [-2, 2]; iteration stops within tolerance *)
      check bool_t "bounded by 2.01" true (Interval.mag iv <= 2.01);
      check bool_t "at least 1.9" true (Interval.mag iv >= 1.9)
  | None -> Alcotest.fail "no range"

let test_range_saturate_breaks_explosion () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let acc = Sfg.Graph.delay g "acc" in
  let bounded = Sfg.Graph.saturate g ~name:"acc.range" acc ~lo:(-4.0) ~hi:4.0 in
  let sum = Sfg.Graph.add g ~name:"sum" bounded x in
  Sfg.Graph.connect_delay g acc sum;
  let r = Sfg.Range_analysis.run g in
  check bool_t "no explosion" true (r.Sfg.Range_analysis.exploded = []);
  check bool_t "sum range [-5,5]" true
    (Sfg.Range_analysis.range_of r "sum" = Some (Interval.make (-5.0) 5.0))

let test_range_msb_of () =
  let r = Sfg.Range_analysis.run (ff_graph ()) in
  check bool_t "msb of y([-1,3]) = 2" true
    (Sfg.Range_analysis.msb_of r "y" = Some 2)

(* property: analytical ranges are sound w.r.t. execution on random
   stimuli (feed-forward random graphs) *)
let prop_range_sound_on_execution =
  QCheck2.Test.make ~name:"analysis covers execution" ~count:100
    QCheck2.Gen.(
      pair (list_size (return 8) (int_range 0 3)) (int_range 0 1000))
    (fun (ops, seed) ->
      let g = Sfg.Graph.create () in
      let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
      let nodes = ref [ x ] in
      List.iteri
        (fun i op ->
          let pick k = List.nth !nodes (k mod List.length !nodes) in
          let name = Printf.sprintf "n%d" i in
          let id =
            match op with
            | 0 -> Sfg.Graph.add g ~name (pick i) (pick (i + 1))
            | 1 -> Sfg.Graph.sub g ~name (pick i) (pick (i + 1))
            | 2 -> Sfg.Graph.mul g ~name (pick i) (pick (i + 1))
            | _ -> Sfg.Graph.delay_of g name (pick i)
          in
          nodes := id :: !nodes)
        ops;
      let r = Sfg.Range_analysis.run g in
      let rng = Stats.Rng.create ~seed in
      let traces =
        Sfg.Graph.simulate g ~steps:50 ~inputs:(fun _ _ ->
            Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      List.for_all
        (fun (name, trace) ->
          match Sfg.Range_analysis.range_of r name with
          | None -> true
          | Some iv -> Array.for_all (fun v -> Interval.mem v iv) trace)
        traces)

(* --- noise analysis ---------------------------------------------------- *)

let quantized_chain () =
  (* x --quantize--> q --*0.5--> y : output noise = 0.5²·q²/12 *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let dt = Fixpt.Dtype.make "t" ~n:8 ~f:6 () in
  let q = Sfg.Graph.quantize g ~name:"q" dt x in
  let half = Sfg.Graph.const g 0.5 in
  let y = Sfg.Graph.mul g ~name:"y" q half in
  Sfg.Graph.mark_output g "y" y;
  (g, Fixpt.Dtype.step dt)

let test_noise_single_quantizer () =
  let g, step = quantized_chain () in
  let ranges = Sfg.Range_analysis.run g in
  let nz = Sfg.Noise_analysis.run g ~ranges in
  let expected = sqrt (step *. step /. 12.0) *. 0.5 in
  match Sfg.Noise_analysis.sigma_of nz "y" with
  | Some s -> check (Alcotest.float 1e-12) "scaled quantizer sigma" expected s
  | None -> Alcotest.fail "no sigma"

let test_noise_adds_variances () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let dt = Fixpt.Dtype.make "t" ~n:8 ~f:6 () in
  let q1 = Sfg.Graph.quantize g ~name:"q1" dt x in
  let q2 = Sfg.Graph.quantize g ~name:"q2" dt x in
  let y = Sfg.Graph.add g ~name:"y" q1 q2 in
  Sfg.Graph.mark_output g "y" y;
  let ranges = Sfg.Range_analysis.run g in
  let nz = Sfg.Noise_analysis.run g ~ranges in
  let qvar = Fixpt.Dtype.step dt ** 2.0 /. 12.0 in
  match Sfg.Noise_analysis.moments_of nz "y" with
  | Some m ->
      check (Alcotest.float 1e-15) "sum of variances" (2.0 *. qvar)
        m.Sfg.Noise_analysis.var
  | None -> Alcotest.fail "no moments"

let test_noise_input_source () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  Sfg.Graph.mark_output g "x" x;
  let ranges = Sfg.Range_analysis.run g in
  let nz =
    Sfg.Noise_analysis.run g ~ranges ~input_noise:(fun _ ->
        { Sfg.Noise_analysis.mean = 0.0; mag = 0.0; var = 1e-4 })
  in
  check bool_t "source noise shows" true
    (Sfg.Noise_analysis.sigma_of nz "x" = Some 0.01)

let test_noise_floor_bias_cancellation () =
  (* Regression: two floor-mode quantizers feeding a subtraction.  Each
     injects a signed bias of −q/2; through [Sub] the biases cancel in
     the signed mean, while the conservative |mean| bound still stacks
     to q.  The old analysis took |·| of every operand mean at the
     injection points' consumers, so the two biases could never cancel
     — [y]'s mean came out q instead of 0. *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let dt =
    Fixpt.Dtype.make "t" ~n:8 ~f:6 ~round:Fixpt.Round_mode.Floor
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let q1 = Sfg.Graph.quantize g ~name:"q1" dt x in
  let q2 = Sfg.Graph.quantize g ~name:"q2" dt x in
  let y = Sfg.Graph.sub g ~name:"y" q1 q2 in
  Sfg.Graph.mark_output g "y" y;
  let ranges = Sfg.Range_analysis.run g in
  let nz = Sfg.Noise_analysis.run g ~ranges in
  let step = Fixpt.Dtype.step dt in
  (match Sfg.Noise_analysis.moments_of nz "q1" with
  | Some m ->
      check (Alcotest.float 1e-15) "floor bias is signed (negative)"
        (-.step /. 2.0) m.Sfg.Noise_analysis.mean;
      check (Alcotest.float 1e-15) "bias bound" (step /. 2.0)
        m.Sfg.Noise_analysis.mag
  | None -> Alcotest.fail "no moments for q1");
  match Sfg.Noise_analysis.moments_of nz "y" with
  | Some m ->
      check (Alcotest.float 1e-15) "biases cancel through sub" 0.0
        m.Sfg.Noise_analysis.mean;
      check (Alcotest.float 1e-15) "conservative bound still stacks" step
        m.Sfg.Noise_analysis.mag
  | None -> Alcotest.fail "no moments for y"

let test_noise_stable_loop_converges () =
  (* acc' = 0.5·acc + q(x): loop gain 0.25 in variance; total =
     qvar/(1-0.25) *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let dt = Fixpt.Dtype.make "t" ~n:8 ~f:6 () in
  let q = Sfg.Graph.quantize g ~name:"q" dt x in
  let acc = Sfg.Graph.delay g "acc" in
  let bounded = Sfg.Graph.saturate g ~name:"b" acc ~lo:(-2.0) ~hi:2.0 in
  let half = Sfg.Graph.const g 0.5 in
  let scaled = Sfg.Graph.mul g ~name:"scaled" bounded half in
  let sum = Sfg.Graph.add g ~name:"sum" scaled q in
  Sfg.Graph.connect_delay g acc sum;
  let ranges = Sfg.Range_analysis.run g in
  let nz = Sfg.Noise_analysis.run g ~ranges in
  check bool_t "converged" true (nz.Sfg.Noise_analysis.diverged = []);
  let qvar = Fixpt.Dtype.step dt ** 2.0 /. 12.0 in
  match Sfg.Noise_analysis.moments_of nz "sum" with
  | Some m ->
      check (Alcotest.float 1e-9) "geometric series limit"
        (qvar /. 0.75) m.Sfg.Noise_analysis.var
  | None -> Alcotest.fail "no moments"

let test_noise_unstable_loop_diverges () =
  (* acc' = 1.5·acc + q(x): variance gain 2.25 > 1 *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let dt = Fixpt.Dtype.make "t" ~n:8 ~f:6 () in
  let q = Sfg.Graph.quantize g ~name:"q" dt x in
  let acc = Sfg.Graph.delay g "acc" in
  let bounded = Sfg.Graph.saturate g ~name:"b" acc ~lo:(-2.0) ~hi:2.0 in
  let k = Sfg.Graph.const g 1.5 in
  let scaled = Sfg.Graph.mul g ~name:"scaled" bounded k in
  let sum = Sfg.Graph.add g ~name:"sum" scaled q in
  Sfg.Graph.connect_delay g acc sum;
  let ranges = Sfg.Range_analysis.run g in
  let nz = Sfg.Noise_analysis.run g ~ranges ~max_iter:256 in
  check bool_t "divergence detected" true
    (List.mem "sum" nz.Sfg.Noise_analysis.diverged
    || List.mem "acc" nz.Sfg.Noise_analysis.diverged)

(* --- wordlength (analytical baseline) ---------------------------------- *)

let test_wordlength_budget_respected () =
  let g, _ = quantized_chain () in
  let wl = Sfg.Wordlength.assign g ~output:"y" ~sigma_budget:1e-3 in
  check bool_t "no explosions" true (wl.Sfg.Wordlength.exploded = []);
  check bool_t "total bits computed" true
    (wl.Sfg.Wordlength.total_bits <> None);
  (* verify the budget analytically: re-run noise with assigned LSBs *)
  List.iter
    (fun (a : Sfg.Wordlength.assignment) ->
      match (a.Sfg.Wordlength.msb, a.Sfg.Wordlength.lsb) with
      | Some m, Some l -> check bool_t "msb >= lsb" true (m >= l)
      | _ -> ())
    wl.Sfg.Wordlength.assignments

let test_wordlength_tighter_budget_more_bits () =
  let g, _ = quantized_chain () in
  let loose = Sfg.Wordlength.assign g ~output:"y" ~sigma_budget:1e-2 in
  let tight = Sfg.Wordlength.assign g ~output:"y" ~sigma_budget:1e-5 in
  match (loose.Sfg.Wordlength.total_bits, tight.Sfg.Wordlength.total_bits) with
  | Some a, Some b -> check bool_t "tighter costs more" true (b > a)
  | _ -> Alcotest.fail "expected totals"

let test_wordlength_explosion_reported () =
  let wl = Sfg.Wordlength.assign (acc_graph ()) ~output:"sum" ~sigma_budget:1e-3 in
  check bool_t "exploded" true (wl.Sfg.Wordlength.exploded <> []);
  check bool_t "no total" true (wl.Sfg.Wordlength.total_bits = None)

(* --- dot --------------------------------------------------------------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_dot_render () =
  let g = ff_graph () in
  let ranges = Sfg.Range_analysis.run g in
  let dot = Sfg.Dot.render ~ranges g in
  check bool_t "digraph" true (contains "digraph sfg" dot);
  check bool_t "node" true (contains "x\\ninput" dot);
  check bool_t "edge" true (contains "->" dot);
  check bool_t "range annotation" true (contains "[-1, 3]" dot);
  check bool_t "output port" true (contains "out_y" dot)

let test_dot_delay_dashed () =
  let dot = Sfg.Dot.render (acc_graph ()) in
  check bool_t "feedback dashed" true (contains "style=dashed" dot)

let suite =
  ( "sfg",
    [
      Alcotest.test_case "arity checked" `Quick test_arity_checked;
      Alcotest.test_case "validate pending delay" `Quick
        test_validate_pending_delay;
      Alcotest.test_case "simulate ff" `Quick test_simulate_ff;
      Alcotest.test_case "simulate delay" `Quick
        test_simulate_delay_semantics;
      Alcotest.test_case "simulate feedback" `Quick
        test_simulate_feedback_accumulates;
      Alcotest.test_case "range ff exact" `Quick test_range_ff_exact;
      Alcotest.test_case "range accumulator explodes" `Quick
        test_range_accumulator_explodes;
      Alcotest.test_case "range damped converges" `Quick
        test_range_damped_converges;
      Alcotest.test_case "saturate breaks explosion" `Quick
        test_range_saturate_breaks_explosion;
      Alcotest.test_case "range msb_of" `Quick test_range_msb_of;
      Test_support.Qseed.to_alcotest prop_range_sound_on_execution;
      Alcotest.test_case "noise single quantizer" `Quick
        test_noise_single_quantizer;
      Alcotest.test_case "noise adds variances" `Quick
        test_noise_adds_variances;
      Alcotest.test_case "noise input source" `Quick test_noise_input_source;
      Alcotest.test_case "noise floor-bias cancellation" `Quick
        test_noise_floor_bias_cancellation;
      Alcotest.test_case "noise stable loop" `Quick
        test_noise_stable_loop_converges;
      Alcotest.test_case "noise unstable loop" `Quick
        test_noise_unstable_loop_diverges;
      Alcotest.test_case "wordlength budget" `Quick
        test_wordlength_budget_respected;
      Alcotest.test_case "wordlength budget scaling" `Quick
        test_wordlength_tighter_budget_more_bits;
      Alcotest.test_case "wordlength explosion" `Quick
        test_wordlength_explosion_reported;
      Alcotest.test_case "dot render" `Quick test_dot_render;
      Alcotest.test_case "dot delay dashed" `Quick test_dot_delay_dashed;
    ] )
