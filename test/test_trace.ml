(* Unit tests: the observability layer — counting sink semantics
   (wrap/sat split, round/floor split, watermark + cycle), sink replay
   on attach, commutative merge, ring-buffer flight recorder, span
   recording, Chrome export, sweep counter determinism, observer
   neutrality, and the null-sink zero-allocation contract. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let float_t = Alcotest.float 1e-9

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- counting sink on a live simulation -------------------------------- *)

let test_counters_wrap_sat_round_floor () =
  let env = Sim.Env.create () in
  let wrap_dt =
    Fixpt.Dtype.make "w" ~n:4 ~f:2 ~round:Fixpt.Round_mode.Round
      ~overflow:Fixpt.Overflow_mode.Wrap ()
  in
  let sat_dt =
    Fixpt.Dtype.make "s" ~n:4 ~f:2 ~round:Fixpt.Round_mode.Floor
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let w = Sim.Signal.create env ~dtype:wrap_dt "w" in
  let s = Sim.Signal.create env ~dtype:sat_dt "s" in
  let u = Sim.Signal.create env "u" in
  let ctr = Trace.Counters.create () in
  Sim.Env.set_sink env (Trace.Counters.sink ctr);
  (* in-range quantized assigns *)
  w <-- cst 0.6;
  s <-- cst 0.6;
  u <-- cst 0.6;
  (* out-of-range: <4,2> spans [-2, 1.75] *)
  w <-- cst 3.0;
  s <-- cst 3.0;
  Sim.Env.clear_sink env;
  (* events after detach are not counted *)
  w <-- cst 0.25;
  let slot name =
    match
      List.find_opt
        (fun (_, c) -> String.equal c.Trace.Counters.cs_name name)
        (Trace.Counters.signals ctr)
    with
    | Some (_, c) -> c
    | None -> Alcotest.failf "no counters for %s" name
  in
  let cw = slot "w" and cs = slot "s" and cu = slot "u" in
  check int_t "w assigns" 2 cw.Trace.Counters.assigns;
  check int_t "w quantized" 2 cw.Trace.Counters.quantized;
  check int_t "w rounds" 2 cw.Trace.Counters.rounds;
  check int_t "w floors" 0 cw.Trace.Counters.floors;
  check int_t "w wraps" 1 cw.Trace.Counters.wraps;
  check int_t "w sats" 0 cw.Trace.Counters.sats;
  check int_t "s floors" 2 cs.Trace.Counters.floors;
  check int_t "s rounds" 0 cs.Trace.Counters.rounds;
  check int_t "s sats" 1 cs.Trace.Counters.sats;
  check int_t "s wraps" 0 cs.Trace.Counters.wraps;
  check int_t "unquantized assigns" 1 cu.Trace.Counters.assigns;
  check int_t "unquantized casts" 0 cu.Trace.Counters.quantized;
  check int_t "totals" 5 (Trace.Counters.total_assigns ctr);
  check int_t "total overflows" 2 (Trace.Counters.total_overflows ctr)

let test_counters_watermark_cycle () =
  let env = Sim.Env.create () in
  let dt =
    Fixpt.Dtype.make "t" ~n:8 ~f:2 ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  let ctr = Trace.Counters.create () in
  Sim.Env.set_sink env (Trace.Counters.sink ctr);
  s <-- cst 0.26;
  (* |eps| = 0.01 at cycle 0 *)
  Sim.Env.tick env;
  Sim.Env.tick env;
  s <-- cst 0.35;
  (* |eps| = 0.1 at cycle 2 — the watermark *)
  Sim.Env.tick env;
  s <-- cst 0.3;
  (* |eps| = 0.05: below, must not move the watermark *)
  let _, c = List.hd (Trace.Counters.signals ctr) in
  check float_t "watermark magnitude" 0.1 c.Trace.Counters.err_max;
  check int_t "watermark cycle" 2 c.Trace.Counters.err_max_time

let test_set_sink_replays_registrations () =
  (* signals created before the sink attaches are announced on attach *)
  let env = Sim.Env.create () in
  let a = Sim.Signal.create env "a" in
  let _b = Sim.Signal.create env "b" in
  let ctr = Trace.Counters.create () in
  Sim.Env.set_sink env (Trace.Counters.sink ctr);
  a <-- cst 1.0;
  let names =
    List.map
      (fun (_, c) -> c.Trace.Counters.cs_name)
      (Trace.Counters.signals ctr)
  in
  check bool_t "both signals replayed" true
    (List.mem "a" names && List.mem "b" names);
  check int_t "assign after attach counted" 1 (Trace.Counters.total_assigns ctr)

let test_tee_feeds_both () =
  let env = Sim.Env.create () in
  let s = Sim.Signal.create env "s" in
  let ctr = Trace.Counters.create () in
  let ring = Trace.Ring.create ~capacity:8 () in
  Sim.Env.set_sink env
    (Trace.Sink.tee (Trace.Counters.sink ctr) (Trace.Ring.sink ring));
  s <-- cst 1.0;
  s <-- cst 2.0;
  check int_t "counters side" 2 (Trace.Counters.total_assigns ctr);
  check int_t "ring side" 2 (Trace.Ring.length ring)

(* --- merge discipline --------------------------------------------------- *)

(* Drive a counter set directly through its sink. *)
let mk_counter spec =
  let c = Trace.Counters.create () in
  let s = Trace.Counters.sink c in
  List.iter
    (fun (id, name, events) ->
      s.Trace.Sink.on_register ~id ~name;
      List.iter
        (fun (time, err) ->
          s.Trace.Sink.on_assign ~id ~time ~err ~quantized:true ~rounded:true)
        events)
    spec;
  c

let test_merge_commutative_associative () =
  let a = mk_counter [ (0, "x", [ (0, 0.5); (1, 0.25) ]) ] in
  let b = mk_counter [ (0, "x", [ (5, 0.75) ]); (1, "y", [ (2, 0.125) ]) ] in
  let c = mk_counter [ (1, "y", [ (7, 0.25) ]) ] in
  let j t = Trace.Counters.to_json t in
  check string_t "commutative" (j (Trace.Counters.merge a b))
    (j (Trace.Counters.merge b a));
  check string_t "associative"
    (j (Trace.Counters.merge (Trace.Counters.merge a b) c))
    (j (Trace.Counters.merge a (Trace.Counters.merge b c)))

let test_merge_watermark_tie_prefers_earlier_cycle () =
  let a = mk_counter [ (0, "x", [ (9, 0.5) ]) ] in
  let b = mk_counter [ (0, "x", [ (3, 0.5) ]) ] in
  let check_time t =
    let _, c = List.hd (Trace.Counters.signals t) in
    check float_t "watermark kept" 0.5 c.Trace.Counters.err_max;
    check int_t "tie takes the earlier cycle" 3 c.Trace.Counters.err_max_time
  in
  check_time (Trace.Counters.merge a b);
  check_time (Trace.Counters.merge b a)

let test_merge_name_mismatch_raises () =
  let a = mk_counter [ (0, "x", [ (0, 0.1) ]) ] in
  let b = mk_counter [ (0, "y", [ (0, 0.1) ]) ] in
  check bool_t "conflicting designs rejected" true
    (try
       ignore (Trace.Counters.merge a b);
       false
     with Invalid_argument _ -> true)

(* --- ring buffer --------------------------------------------------------- *)

let test_ring_wraps_and_orders () =
  let ring = Trace.Ring.create ~capacity:4 () in
  let s = Trace.Ring.sink ring in
  s.Trace.Sink.on_register ~id:0 ~name:"sig";
  for t = 1 to 6 do
    s.Trace.Sink.on_assign ~id:0 ~time:t ~err:(Float.of_int t)
      ~quantized:false ~rounded:false
  done;
  s.Trace.Sink.on_overflow ~id:0 ~time:7 ~raw:9.0 ~saturating:true;
  check int_t "length capped" 4 (Trace.Ring.length ring);
  check int_t "drops counted" 3 (Trace.Ring.dropped ring);
  check string_t "registered name" "sig" (Trace.Ring.name_of ring 0);
  let times =
    List.map
      (function
        | Trace.Ring.Assign { time; _ } -> time
        | Trace.Ring.Overflow { time; _ } -> time
        | Trace.Ring.Fault { time; _ } -> time)
      (Trace.Ring.events ring)
  in
  check bool_t "oldest first, newest retained" true (times = [ 4; 5; 6; 7 ]);
  check bool_t "bad capacity rejected" true
    (try
       ignore (Trace.Ring.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* --- spans + Chrome export ----------------------------------------------- *)

let test_spans_gate_and_chrome_json () =
  Trace.Spans.reset ();
  Trace.Spans.set_enabled false;
  Trace.Spans.record ~cat:"test" ~name:"ignored" ~t0:0.0 ~t1:1.0 ();
  check int_t "disabled records nothing" 0 (List.length (Trace.Spans.drain ()));
  Trace.Spans.set_enabled true;
  Trace.Spans.record ~tid:2
    ~args:[ ("iterations", "3") ]
    ~cat:"refine" ~name:"msb-phase" ~t0:10.0 ~t1:10.5 ();
  let spans = Trace.Spans.drain () in
  Trace.Spans.set_enabled false;
  check int_t "enabled records" 1 (List.length spans);
  let ring = Trace.Ring.create ~capacity:4 () in
  let s = Trace.Ring.sink ring in
  s.Trace.Sink.on_register ~id:0 ~name:"acc";
  s.Trace.Sink.on_assign ~id:0 ~time:12 ~err:0.25 ~quantized:true
    ~rounded:false;
  let json = Trace.Chrome.to_json ~spans ~ring () in
  check bool_t "has trace events array" true (contains "\"traceEvents\"" json);
  check bool_t "has the span" true (contains "\"name\": \"msb-phase\"" json);
  check bool_t "span is a complete event" true (contains "\"ph\": \"X\"" json);
  check bool_t "span carries args" true (contains "\"iterations\"" json);
  check bool_t "ring instant present" true (contains "assign acc" json);
  check bool_t "cycle-time instant" true (contains "\"ph\": \"i\"" json)

(* --- sweep determinism + observer neutrality ----------------------------- *)

let small_sweep ~jobs ~counters () =
  let workload = Sweep.Workload.fir ~n:64 () in
  let generator =
    Sweep.Generator.grid ~specs:workload.Sweep.Workload.specs ~f_min:4
      ~f_max:6 ~seeds:[ 0 ]
  in
  Sweep.Pool.run ~jobs ~counters ~workload ~generator ()

let test_sweep_counters_jobs_deterministic () =
  let seq = small_sweep ~jobs:1 ~counters:true () in
  let par = small_sweep ~jobs:3 ~counters:true () in
  check bool_t "some events counted" true
    (match seq.Sweep.Report.agg_counters with
    | Some c -> Trace.Counters.total_assigns c > 0
    | None -> false);
  check string_t "counters byte-identical across jobs"
    (Sweep.Report.counters_json seq)
    (Sweep.Report.counters_json par)

let test_sweep_observer_neutral () =
  let counted = small_sweep ~jobs:1 ~counters:true () in
  let plain = small_sweep ~jobs:1 ~counters:false () in
  check string_t "report unchanged by counting"
    (Sweep.Report.to_json plain)
    (Sweep.Report.to_json counted)

(* --- null sink: allocation-free disabled path ---------------------------- *)

let test_null_sink_allocation_smoke () =
  let env = Sim.Env.create () in
  let dt = Fixpt.Dtype.make "t" ~n:12 ~f:8 () in
  let s = Sim.Signal.create env ~dtype:dt "s" in
  let e = cst 0.5 in
  let drive n =
    for _ = 1 to n do
      s <-- e;
      Sim.Env.tick env
    done
  in
  (* warm up: first assigns may allocate monitors lazily *)
  drive 256;
  let before = Gc.minor_words () in
  drive 10_000;
  let per_assign = (Gc.minor_words () -. before) /. 10_000.0 in
  (* expression evaluation itself costs ~6 minor words per assign; the
     null-sink branch must add nothing on top — building the event
     arguments (boxed floats + closure application) outside the guard
     would cost 10+ more and trip this bound *)
  check bool_t
    (Printf.sprintf "per-assign minor words %.2f <= 8" per_assign)
    true (per_assign <= 8.0)

let suite =
  ( "trace",
    [
      Alcotest.test_case "counters wrap/sat round/floor" `Quick
        test_counters_wrap_sat_round_floor;
      Alcotest.test_case "counters watermark cycle" `Quick
        test_counters_watermark_cycle;
      Alcotest.test_case "set_sink replays registrations" `Quick
        test_set_sink_replays_registrations;
      Alcotest.test_case "tee feeds both sinks" `Quick test_tee_feeds_both;
      Alcotest.test_case "merge commutative+associative" `Quick
        test_merge_commutative_associative;
      Alcotest.test_case "merge watermark tie" `Quick
        test_merge_watermark_tie_prefers_earlier_cycle;
      Alcotest.test_case "merge name mismatch" `Quick
        test_merge_name_mismatch_raises;
      Alcotest.test_case "ring wrap and order" `Quick
        test_ring_wraps_and_orders;
      Alcotest.test_case "spans gate + chrome json" `Quick
        test_spans_gate_and_chrome_json;
      Alcotest.test_case "sweep counters deterministic" `Quick
        test_sweep_counters_jobs_deterministic;
      Alcotest.test_case "sweep observer neutral" `Quick
        test_sweep_observer_neutral;
      Alcotest.test_case "null sink allocation smoke" `Quick
        test_null_sink_allocation_smoke;
    ] )
