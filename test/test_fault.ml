(* Unit tests: the fault-injection layer — plan validation, pure-hash
   schedule replay, plan JSON round-trips, SEU bitflip validity,
   stimulus corruption/starvation, collect-policy degradation, monitor
   poison-resistance, widening caps, and the sweep quarantine's
   scheduling-independence contract (jobs=1 and jobs=2 must render
   byte-identical partial reports). *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

(* --- Plan validation ----------------------------------------------------- *)

let test_plan_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool_t "rate > 1 rejected" true
    (bad (fun () -> Fault.Plan.make ~nan_rate:1.5 ()));
  check bool_t "negative rate rejected" true
    (bad (fun () -> Fault.Plan.make ~bitflip_rate:(-0.1) ()));
  check bool_t "nan extreme_mag rejected" true
    (bad (fun () -> Fault.Plan.make ~extreme_mag:Float.nan ()));
  check bool_t "negative starve_after rejected" true
    (bad (fun () -> Fault.Plan.make ~starve_after:(-1) ()));
  check bool_t "boundary rates accepted" true
    (ignore (Fault.Plan.make ~nan_rate:0.0 ~inf_rate:1.0 ()); true)

let test_plan_targets () =
  let p = Fault.Plan.make ~targets:[ "x"; "acc" ] () in
  check bool_t "listed signal targeted" true (Fault.Plan.is_target p "x");
  check bool_t "other signal not targeted" false (Fault.Plan.is_target p "y");
  check bool_t "empty targets mean all" true
    (Fault.Plan.is_target (Fault.Plan.make ()) "anything")

(* --- pure-hash schedule -------------------------------------------------- *)

let test_schedule_replay () =
  let mk () =
    Fault.Plan.make ~seed:7 ~bitflip_rate:0.3 ~force_overflow_rate:0.1 ()
  in
  let signals = [ "a"; "b"; "c" ] in
  let s1 = Fault.Plan.schedule (mk ()) ~signals ~cycles:50 () in
  let s2 = Fault.Plan.schedule (mk ()) ~signals ~cycles:50 () in
  check bool_t "nonempty" true (s1 <> []);
  check bool_t "identical across plan instances" true (s1 = s2);
  let s3 =
    Fault.Plan.schedule
      (Fault.Plan.make ~seed:8 ~bitflip_rate:0.3 ~force_overflow_rate:0.1 ())
      ~signals ~cycles:50 ()
  in
  check bool_t "different seed, different schedule" true (s1 <> s3);
  let tagged = Fault.Plan.schedule (mk ()) ~tag:"1" ~signals ~cycles:50 () in
  check bool_t "different tag, different schedule" true (s1 <> tagged)

let prop_fires_pure =
  QCheck2.Test.make ~name:"fires is a pure function of its coordinate"
    ~count:300
    QCheck2.Gen.(triple (int_range 0 1000) (int_range 0 200) (float_range 0.0 1.0))
    (fun (seed, index, rate) ->
      let p1 = Fault.Plan.make ~seed () in
      let p2 = Fault.Plan.make ~seed () in
      Fault.Plan.fires p1 ~stream:"s" ~key:"k" ~index ~rate
      = Fault.Plan.fires p2 ~stream:"s" ~key:"k" ~index ~rate)

let prop_fires_rate_edges =
  QCheck2.Test.make ~name:"rate 0 never fires, rate 1 always fires" ~count:300
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 200))
    (fun (seed, index) ->
      let p = Fault.Plan.make ~seed () in
      (not (Fault.Plan.fires p ~stream:"s" ~key:"k" ~index ~rate:0.0))
      && Fault.Plan.fires p ~stream:"s" ~key:"k" ~index ~rate:1.0)

(* --- plan JSON ----------------------------------------------------------- *)

let test_plan_json_roundtrip () =
  let p =
    Fault.Plan.make ~seed:99 ~nan_rate:0.01 ~inf_rate:0.02 ~denormal_rate:0.03
      ~extreme_rate:0.04 ~extreme_mag:1e6 ~bitflip_rate:0.05
      ~force_overflow_rate:0.06 ~starve_after:100
      ~targets:[ "x"; "v[3]" ] ~on_overflow:Fault.Plan.Force_collect ()
  in
  match Fault.Plan.of_json (Fault.Plan.to_json p) with
  | Ok p' -> check bool_t "round-trips structurally" true (p' = p)
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_plan_json_errors () =
  let bad s =
    match Fault.Plan.of_json s with Ok _ -> false | Error _ -> true
  in
  check bool_t "garbage rejected" true (bad "not json");
  check bool_t "unknown key rejected" true (bad "{\"sneed\": 1}");
  check bool_t "out-of-range rate rejected" true (bad "{\"nan_rate\": 2.0}");
  check bool_t "empty object is the default plan" true
    (Fault.Plan.of_json "{}" = Ok (Fault.Plan.make ()))

let prop_plan_json_roundtrip =
  QCheck2.Test.make ~name:"plan JSON round-trips for any rates" ~count:200
    QCheck2.Gen.(
      quad (int_range 0 10000) (float_range 0.0 1.0) (float_range 0.0 1.0)
        (float_range 1.0 1e20))
    (fun (seed, r1, r2, mag) ->
      let p =
        Fault.Plan.make ~seed ~nan_rate:r1 ~bitflip_rate:r2 ~extreme_mag:mag
          ~on_overflow:Fault.Plan.Force_raise ()
      in
      Fault.Plan.of_json (Fault.Plan.to_json p) = Ok p)

(* --- SEU bitflip --------------------------------------------------------- *)

let seu_dt = Fixpt.Dtype.make "T_seu" ~n:8 ~f:6 ()

let prop_bitflip_representable =
  QCheck2.Test.make ~name:"flipped value is representable" ~count:500
    QCheck2.Gen.(pair (float_range (-1.9) 1.9) (int_range 0 7))
    (fun (v, bit) ->
      let on_grid = Fixpt.Quantize.cast seu_dt v in
      let flipped = Fault.Inject.flip_bit seu_dt ~bit on_grid in
      Fixpt.Qformat.is_exact (Fixpt.Dtype.fmt seu_dt) flipped)

let prop_bitflip_involution =
  QCheck2.Test.make ~name:"flipping the same bit twice restores the value"
    ~count:500
    QCheck2.Gen.(pair (float_range (-1.9) 1.9) (int_range 0 7))
    (fun (v, bit) ->
      let on_grid = Fixpt.Quantize.cast seu_dt v in
      let twice =
        Fault.Inject.flip_bit seu_dt ~bit
          (Fault.Inject.flip_bit seu_dt ~bit on_grid)
      in
      twice = on_grid)

let test_bitflip_changes_value () =
  let on_grid = Fixpt.Quantize.cast seu_dt 0.5 in
  check bool_t "flip changes the value" true
    (Fault.Inject.flip_bit seu_dt ~bit:0 on_grid <> on_grid);
  check bool_t "bit out of range rejected" true
    (try
       ignore (Fault.Inject.flip_bit seu_dt ~bit:8 0.0);
       false
     with Invalid_argument _ -> true)

(* --- stimulus corruption / starvation ------------------------------------ *)

let test_channel_starvation_degrade () =
  let plan = Fault.Plan.make ~starve_after:5 () in
  let ch = Sim.Channel.of_fun "x" (fun i -> float_of_int (i + 1)) in
  Fault.Inject.wrap_channel plan ch;
  let samples = List.init 8 (fun _ -> Sim.Channel.get ch) in
  check bool_t "first five flow through" true
    (List.filteri (fun i _ -> i < 5) samples = [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  check bool_t "starved reads degrade to silence" true
    (List.filteri (fun i _ -> i >= 5) samples = [ 0.0; 0.0; 0.0 ])

let test_channel_starvation_strict () =
  let plan = Fault.Plan.make ~starve_after:2 () in
  let ch = Sim.Channel.of_fun "x" (fun i -> float_of_int i) in
  Fault.Inject.wrap_channel plan ~strict:true ch;
  ignore (Sim.Channel.get ch);
  ignore (Sim.Channel.get ch);
  check bool_t "strict starvation raises Empty" true
    (try
       ignore (Sim.Channel.get ch);
       false
     with Sim.Channel.Empty "x" -> true)

let test_channel_nan_corruption () =
  let plan = Fault.Plan.make ~nan_rate:1.0 () in
  let ch = Sim.Channel.of_fun "x" (fun _ -> 0.25) in
  Fault.Inject.wrap_channel plan ch;
  check bool_t "rate-1 NaN corrupts every sample" true
    (List.init 16 (fun _ -> Sim.Channel.get ch)
    |> List.for_all Float.is_nan)

let test_channel_corruption_deterministic () =
  let mk () =
    let plan =
      Fault.Plan.make ~seed:3 ~extreme_rate:0.5 ~extreme_mag:1e9 ()
    in
    let ch = Sim.Channel.of_fun "x" (fun i -> float_of_int i) in
    Fault.Inject.wrap_channel plan ch;
    List.init 64 (fun _ -> Sim.Channel.get ch)
  in
  check bool_t "same plan, same corrupted stream" true (mk () = mk ());
  check bool_t "some samples corrupted" true
    (List.exists (fun v -> Float.abs v >= 1e9) (mk ()))

let test_wrap_channel_requires_producer () =
  let ch = Sim.Channel.create "plain" in
  check bool_t "unbacked channel rejected" true
    (try
       Fault.Inject.wrap_channel (Fault.Plan.make ()) ch;
       false
     with Invalid_argument _ -> true)

(* --- monitors shrug off non-finite samples ------------------------------- *)

let gen_poison =
  QCheck2.Gen.(
    list_size (int_range 1 50)
      (oneof
         [
           float_range (-100.0) 100.0;
           oneofl [ Float.nan; Float.infinity; Float.neg_infinity ];
         ]))

let prop_running_ignores_poison =
  QCheck2.Test.make ~name:"Running ignores NaN and infinities" ~count:300
    gen_poison (fun samples ->
      let r = Stats.Running.create () in
      List.iter (fun v -> Stats.Running.add r v) samples;
      let finite = List.filter Float.is_finite samples in
      let r' = Stats.Running.create () in
      List.iter (fun v -> Stats.Running.add r' v) finite;
      Stats.Running.count r = Stats.Running.count r'
      && (finite = [] || Float.is_finite (Stats.Running.mean r))
      && Stats.Running.mean r = Stats.Running.mean r')

let prop_sqnr_ignores_poison =
  QCheck2.Test.make ~name:"Sqnr ignores non-finite pairs" ~count:300
    gen_poison (fun samples ->
      let s = Stats.Sqnr.create () in
      List.iter (fun v -> Stats.Sqnr.add s ~reference:v ~actual:(v *. 0.99))
        samples;
      not (Float.is_nan (Stats.Sqnr.db s)))

(* --- widening caps (graceful range degradation) -------------------------- *)

let test_widen_within () =
  let w = Interval.make (-4.0) 4.0 in
  let a = Interval.make (-1.0) 1.0 in
  let growing = Interval.make (-1.0) 2.0 in
  let capped = Interval.widen_within ~within:w a growing in
  (match Interval.bounds capped with
  | Some (lo, hi) ->
      check (float_t 0.0) "lo kept" (-1.0) lo;
      check (float_t 0.0) "hi capped to declared bound" 4.0 hi
  | None -> Alcotest.fail "capped interval is empty");
  check bool_t "empty within falls back to plain widen" true
    (Interval.widen_within ~within:Interval.empty a growing
    = Interval.widen a growing)

let test_range_analysis_degraded () =
  let exploding () =
    let g = Sfg.Graph.create () in
    let c = Dsp.Biquad.resonator ~r:0.99 ~theta:0.3 in
    let _ = Dsp.Biquad.to_sfg ~input_range:(-1.0, 1.0) c g in
    g
  in
  let r1 = Sfg.Range_analysis.run (exploding ()) in
  check bool_t "undeclared feedback explodes" true
    (r1.Sfg.Range_analysis.exploded <> []);
  check bool_t "nothing degraded without declarations" true
    (r1.Sfg.Range_analysis.degraded = []);
  let declared name =
    if List.mem name r1.Sfg.Range_analysis.exploded then
      Some (Interval.make (-20.0) 20.0)
    else None
  in
  let r2 = Sfg.Range_analysis.run ~declared (exploding ()) in
  check bool_t "declared bounds absorb the explosion" true
    (r2.Sfg.Range_analysis.exploded = []);
  check bool_t "capped nodes reported as degraded" true
    (r2.Sfg.Range_analysis.degraded <> [])

(* --- collect policy: degrade, don't die ---------------------------------- *)

let collect_plan =
  lazy
    (Fault.Plan.make ~seed:42 ~force_overflow_rate:0.002
       ~on_overflow:Fault.Plan.Force_collect ())

let test_collect_policy_degrades () =
  let workload = Sweep.Workload.fir ~n:128 () in
  let inst = workload.Sweep.Workload.make_instance () in
  let env = inst.Sweep.Workload.env in
  let ctr = Trace.Counters.create () in
  Sim.Env.set_sink env (Trace.Counters.sink ctr);
  Fault.Inject.arm_env (Lazy.force collect_plan) env;
  inst.Sweep.Workload.design.Refine.Flow.reset ();
  inst.Sweep.Workload.design.Refine.Flow.run ();
  Sim.Env.clear_sink env;
  let faults = Sim.Env.collected_faults env in
  check bool_t "run completed with faults collected" true (faults <> []);
  check int_t "collected_count agrees" (List.length faults)
    (Sim.Env.collected_count env);
  check bool_t "records carry signal and time" true
    (List.for_all
       (fun (f : Sim.Env.fault_record) ->
         f.Sim.Env.f_signal <> "" && f.Sim.Env.f_time >= 0)
       faults);
  check bool_t "fault counters tallied" true (Trace.Counters.total_faults ctr > 0);
  let before = Sim.Env.collected_count env in
  check bool_t "some faults seen" true (before > 0);
  Sim.Env.reset env;
  check int_t "reset clears collected faults" 0 (Sim.Env.collected_count env)

(* --- faulted sweep: partial but deterministic ---------------------------- *)

let faulted_sweep ~jobs =
  let plan =
    Fault.Plan.make ~seed:42 ~bitflip_rate:0.002 ~force_overflow_rate:0.0001
      ~on_overflow:Fault.Plan.Force_raise ()
  in
  let workload = Fault.Inject.workload plan (Sweep.Workload.fir ~n:128 ()) in
  let specs = workload.Sweep.Workload.specs in
  let generator =
    Sweep.Generator.grid ~specs ~f_min:4 ~f_max:7 ~seeds:[ 0; 1; 2; 3 ]
  in
  Sweep.Pool.run ~jobs ~workload ~generator ()

let test_faulted_sweep_jobs_deterministic () =
  let sequential = faulted_sweep ~jobs:1 in
  let parallel = faulted_sweep ~jobs:2 in
  check bool_t "quarantine nonempty" true
    (sequential.Sweep.Report.failures <> []);
  check bool_t "still evaluates the healthy candidates" true
    (sequential.Sweep.Report.entries <> []);
  check bool_t "every quarantined candidate was retried" true
    (List.for_all
       (fun (f : Sweep.Report.failure) -> f.Sweep.Report.attempts = 2)
       sequential.Sweep.Report.failures);
  check Alcotest.string "partial reports byte-identical at jobs 1 vs 2"
    (Sweep.Report.to_json sequential)
    (Sweep.Report.to_json parallel)

let suite =
  ( "fault",
    [
      Alcotest.test_case "plan validation" `Quick test_plan_validation;
      Alcotest.test_case "plan targets" `Quick test_plan_targets;
      Alcotest.test_case "schedule replay" `Quick test_schedule_replay;
      Test_support.Qseed.to_alcotest prop_fires_pure;
      Test_support.Qseed.to_alcotest prop_fires_rate_edges;
      Alcotest.test_case "plan JSON roundtrip" `Quick test_plan_json_roundtrip;
      Alcotest.test_case "plan JSON errors" `Quick test_plan_json_errors;
      Test_support.Qseed.to_alcotest prop_plan_json_roundtrip;
      Test_support.Qseed.to_alcotest prop_bitflip_representable;
      Test_support.Qseed.to_alcotest prop_bitflip_involution;
      Alcotest.test_case "bitflip changes value" `Quick
        test_bitflip_changes_value;
      Alcotest.test_case "starvation degrades" `Quick
        test_channel_starvation_degrade;
      Alcotest.test_case "starvation strict" `Quick
        test_channel_starvation_strict;
      Alcotest.test_case "NaN corruption" `Quick test_channel_nan_corruption;
      Alcotest.test_case "corruption deterministic" `Quick
        test_channel_corruption_deterministic;
      Alcotest.test_case "wrap needs producer" `Quick
        test_wrap_channel_requires_producer;
      Test_support.Qseed.to_alcotest prop_running_ignores_poison;
      Test_support.Qseed.to_alcotest prop_sqnr_ignores_poison;
      Alcotest.test_case "widen_within caps" `Quick test_widen_within;
      Alcotest.test_case "range analysis degraded" `Quick
        test_range_analysis_degraded;
      Alcotest.test_case "collect policy degrades" `Quick
        test_collect_policy_degrades;
      Alcotest.test_case "faulted sweep determinism" `Quick
        test_faulted_sweep_jobs_deterministic;
    ] )
