(* Unit + property tests: Stats — Rng, Running, Err_stats, Histogram,
   Sqnr. *)

open Fixrefine.Stats

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

(* --- Rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check (float_t 0.0) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  check bool_t "different streams" true (Rng.float a <> Rng.float b)

let test_rng_float_range () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    check bool_t "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniform_sym () =
  let r = Rng.create ~seed:9 in
  let run = Running.create () in
  for _ = 1 to 20_000 do
    Running.add run (Rng.uniform_sym r 0.5)
  done;
  check (float_t 0.01) "mean ~0" 0.0 (Running.mean run);
  (* sigma of U(-h,h) is h/sqrt 3 *)
  check (float_t 0.01) "sigma h/sqrt3" (0.5 /. sqrt 3.0) (Running.stddev run);
  check bool_t "bounded" true (Running.max_abs run <= 0.5)

let test_rng_gauss_moments () =
  let g = Rng.gauss_state (Rng.create ~seed:3) in
  let run = Running.create () in
  for _ = 1 to 50_000 do
    Running.add run (Rng.gauss g)
  done;
  check (float_t 0.02) "mean" 0.0 (Running.mean run);
  check (float_t 0.02) "sigma" 1.0 (Running.stddev run)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  check bool_t "distinct" true (Rng.float parent <> Rng.float child)

let test_rng_pam2 () =
  let r = Rng.create ~seed:17 in
  for _ = 1 to 100 do
    let v = Rng.pam2 r in
    check bool_t "pm1" true (v = 1.0 || v = -1.0)
  done

let test_rng_pam4 () =
  let r = Rng.create ~seed:23 in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 1000 do
    Hashtbl.replace seen (Rng.pam ~m:4 r) ()
  done;
  check int_t "4 levels" 4 (Hashtbl.length seen);
  Hashtbl.iter (fun v () -> check bool_t "normalized" true (Float.abs v <= 1.0)) seen

let test_rng_int_bounds () =
  let r = Rng.create ~seed:29 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    check bool_t "in [0,7)" true (v >= 0 && v < 7)
  done

(* --- Running ----------------------------------------------------------- *)

let test_running_basic () =
  let r = Running.create () in
  List.iter (Running.add r) [ 1.0; 2.0; 3.0; 4.0 ];
  check int_t "count" 4 (Running.count r);
  check (float_t 1e-12) "mean" 2.5 (Running.mean r);
  check (float_t 1e-12) "min" 1.0 (Running.min_value r);
  check (float_t 1e-12) "max" 4.0 (Running.max_value r);
  check (float_t 1e-12) "max_abs" 4.0 (Running.max_abs r);
  check (float_t 1e-12) "population variance" 1.25 (Running.variance r);
  check (float_t 1e-12) "sample variance" (5.0 /. 3.0)
    (Running.sample_variance r)

let test_running_empty () =
  let r = Running.create () in
  check bool_t "empty" true (Running.is_empty r);
  check (float_t 0.0) "mean 0" 0.0 (Running.mean r);
  check bool_t "no range" true (Running.range r = None)

let test_running_nan_ignored () =
  let r = Running.create () in
  Running.add r Float.nan;
  Running.add r 1.0;
  check int_t "one sample" 1 (Running.count r)

let test_running_reset () =
  let r = Running.create () in
  Running.add r 5.0;
  Running.reset r;
  check bool_t "empty after reset" true (Running.is_empty r)

let prop_running_matches_direct =
  QCheck2.Test.make ~name:"welford matches direct computation" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let r = Running.create () in
      List.iter (Running.add r) xs;
      let n = Float.of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. n
      in
      Float.abs (Running.mean r -. mean) < 1e-9 *. (1.0 +. Float.abs mean)
      && Float.abs (Running.variance r -. var) < 1e-6 *. (1.0 +. var))

let prop_merge_equals_concat =
  QCheck2.Test.make ~name:"merge equals concatenation" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) (float_range (-10.0) 10.0))
        (list_size (int_range 1 30) (float_range (-10.0) 10.0)))
    (fun (xs, ys) ->
      let ra = Running.create () and rb = Running.create () in
      List.iter (Running.add ra) xs;
      List.iter (Running.add rb) ys;
      let rc = Running.create () in
      List.iter (Running.add rc) (xs @ ys);
      let m = Running.merge ra rb in
      Running.count m = Running.count rc
      && Float.abs (Running.mean m -. Running.mean rc) < 1e-9
      && Float.abs (Running.variance m -. Running.variance rc) < 1e-6)

(* --- Err_stats --------------------------------------------------------- *)

let test_err_stats_record () =
  let e = Err_stats.create () in
  Err_stats.record e ~consumed:0.01 ~produced:0.02;
  Err_stats.record e ~consumed:(-0.01) ~produced:(-0.02);
  check int_t "count" 2 (Err_stats.count e);
  check (float_t 1e-12) "consumed sigma" 0.01
    (Running.stddev (Err_stats.consumed e));
  check (float_t 1e-12) "produced sigma" 0.02
    (Running.stddev (Err_stats.produced e))

let test_err_loss_verdicts () =
  let quantizing = Err_stats.create () in
  for i = 1 to 100 do
    let s = if i mod 2 = 0 then 1.0 else -1.0 in
    Err_stats.record quantizing ~consumed:(0.001 *. s) ~produced:(0.01 *. s)
  done;
  check bool_t "loss detected" true
    (Err_stats.loss_verdict quantizing = Err_stats.Quantization_loss);
  let neutral = Err_stats.create () in
  for i = 1 to 100 do
    let s = if i mod 2 = 0 then 1.0 else -1.0 in
    Err_stats.record neutral ~consumed:(0.01 *. s) ~produced:(0.01 *. s)
  done;
  check bool_t "no loss" true (Err_stats.loss_verdict neutral = Err_stats.No_loss);
  let gain = Err_stats.create () in
  for i = 1 to 100 do
    let s = if i mod 2 = 0 then 1.0 else -1.0 in
    Err_stats.record gain ~consumed:(0.01 *. s) ~produced:(0.001 *. s)
  done;
  check bool_t "feedback gain" true
    (Err_stats.loss_verdict gain = Err_stats.Feedback_gain)

let test_err_precision_of () =
  let e = Err_stats.create () in
  check bool_t "no error = None" true (Err_stats.produced_precision e = None);
  for i = 1 to 1000 do
    let s = if i mod 2 = 0 then 1.0 else -1.0 in
    Err_stats.record e ~consumed:0.0 ~produced:(0.0078125 *. s)
  done;
  (match Err_stats.produced_precision e with
  | Some p -> check int_t "position of 2^-7 noise" (-7) p
  | None -> Alcotest.fail "expected a precision")

let test_err_precision_bad_k () =
  let r = Running.create () in
  Running.add r 0.25;
  let raises k =
    try
      ignore (Err_stats.precision_of ~k r);
      false
    with Invalid_argument _ -> true
  in
  check bool_t "k = 0 raises" true (raises 0.0);
  check bool_t "k < 0 raises" true (raises (-2.0));
  check bool_t "k nan raises" true (raises Float.nan);
  check bool_t "k infinite raises" true (raises Float.infinity);
  (* the guard fires even on the identically-zero population *)
  check bool_t "bad k beats the None path" true
    (try
       ignore (Err_stats.precision_of ~k:(-1.0) (Running.create ()));
       false
     with Invalid_argument _ -> true)

let test_err_precision_constant_error () =
  (* σ = 0 but max_abs > 0: a pure DC offset (e.g. floor bias on a
     constant signal).  The magnitude stands in for σ. *)
  let r = Running.create () in
  for _ = 1 to 50 do
    Running.add r (-0.125)
  done;
  check (float_t 0.0) "sigma is zero" 0.0 (Running.stddev r);
  (match Err_stats.precision_of r with
  | Some p -> check int_t "constant 2^-3 error" (-3) p
  | None -> Alcotest.fail "constant error must have a precision");
  (* extreme products clamp to the float exponent range instead of
     truncating an infinity *)
  let big = Running.create () in
  Running.add big 1e308;
  Running.add big (-1e308);
  (match Err_stats.precision_of ~k:1e30 big with
  | Some p -> check int_t "overflowing k*s clamps" 1023 p
  | None -> Alcotest.fail "expected a precision");
  let tiny = Running.create () in
  Running.add tiny Float.min_float;
  (match Err_stats.precision_of ~k:1e-300 tiny with
  | Some p -> check bool_t "underflowing k*s clamps" true (p >= -1074)
  | None -> Alcotest.fail "expected a precision")

(* §5.2 σ-rule: the returned position p brackets the target step,
   2^p <= k·σ < 2^(p+1) (σ standing in for max_abs on constant
   errors).  Tolerant comparison absorbs log2 rounding at power-of-two
   boundaries. *)
let prop_precision_sigma_rule =
  QCheck2.Test.make ~name:"precision_of brackets k*sigma (sigma-rule)"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 2 60) (float_range (-50.0) 50.0))
        (float_range 0.125 8.0))
    (fun (xs, k) ->
      let r = Running.create () in
      List.iter (Running.add r) xs;
      let sigma = Running.stddev r in
      let m = Running.max_abs r in
      match Err_stats.precision_of ~k r with
      | None -> sigma = 0.0 && m = 0.0
      | Some p ->
          let s = if sigma > 0.0 then sigma else m in
          let step = 2.0 ** Float.of_int p in
          let tol = 1.0 +. 1e-9 in
          step <= k *. s *. tol && k *. s < 2.0 *. step *. tol)

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.3; 0.6; 0.9; -0.5; 1.5; 1.0 ];
  check int_t "total" 7 (Histogram.total h);
  check int_t "below" 1 (Histogram.below h);
  check int_t "above" 1 (Histogram.above h);
  check bool_t "counts" true (Histogram.counts h = [| 1; 1; 1; 2 |])

let test_histogram_coverage () =
  let h = Histogram.create ~lo:(-1.0) ~hi:1.0 ~bins:20 in
  for i = 0 to 999 do
    (* triangular-ish mass near 0 *)
    let v = 0.4 *. sin (Float.of_int i) in
    Histogram.add h v
  done;
  match Histogram.coverage_range h ~coverage:0.95 with
  | Some (lo, hi) ->
      check bool_t "tight" true (lo >= -0.5 && hi <= 0.5 && lo < hi)
  | None -> Alcotest.fail "expected a range"

let test_histogram_chi_square () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:10 in
  let r = Rng.create ~seed:77 in
  for _ = 1 to 10_000 do
    Histogram.add h (Rng.float r)
  done;
  (* chi-square with 9 dof: stay under a generous 99.9% bound *)
  check bool_t "uniformish" true (Histogram.chi_square_uniform h < 30.0)

(* --- Sqnr -------------------------------------------------------------- *)

let test_sqnr_known_ratio () =
  (* signal 1.0, error 0.01 -> 40 dB *)
  let t = Sqnr.create () in
  for _ = 1 to 100 do
    Sqnr.add t ~reference:1.0 ~actual:0.99
  done;
  check (float_t 1e-9) "40 dB" 40.0 (Sqnr.db t)

let test_sqnr_no_noise () =
  let t = Sqnr.create () in
  Sqnr.add t ~reference:1.0 ~actual:1.0;
  check bool_t "infinite" true (Sqnr.db t = Float.infinity)

let test_sqnr_of_arrays () =
  let reference = [| 1.0; -1.0; 1.0 |] in
  let actual = [| 0.9; -0.9; 0.9 |] in
  check (float_t 1e-9) "20 dB" 20.0 (Sqnr.of_arrays ~reference ~actual)

let test_sqnr_theoretical_quantization () =
  (* measured SQNR of quantizing uniform noise matches theory within
     ~0.5 dB *)
  let open Fixrefine in
  let dt = Fixpt.Dtype.make "t" ~n:10 ~f:8 () in
  let r = Rng.create ~seed:123 in
  let t = Sqnr.create () in
  for _ = 1 to 50_000 do
    let v = Rng.uniform r ~lo:(-1.9) ~hi:1.9 in
    Sqnr.add t ~reference:v ~actual:(Fixpt.Quantize.cast dt v)
  done;
  let theory =
    Sqnr.theoretical_uniform_db ~amplitude:1.9 ~step:(Fixpt.Dtype.step dt)
  in
  check (float_t 0.5) "matches theory" theory (Sqnr.db t)

let suite =
  ( "stats",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng uniform_sym moments" `Quick
        test_rng_uniform_sym;
      Alcotest.test_case "rng gauss moments" `Quick test_rng_gauss_moments;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng pam2" `Quick test_rng_pam2;
      Alcotest.test_case "rng pam4" `Quick test_rng_pam4;
      Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
      Alcotest.test_case "running basic" `Quick test_running_basic;
      Alcotest.test_case "running empty" `Quick test_running_empty;
      Alcotest.test_case "running nan" `Quick test_running_nan_ignored;
      Alcotest.test_case "running reset" `Quick test_running_reset;
      Test_support.Qseed.to_alcotest prop_running_matches_direct;
      Test_support.Qseed.to_alcotest prop_merge_equals_concat;
      Alcotest.test_case "err record" `Quick test_err_stats_record;
      Alcotest.test_case "err loss verdicts" `Quick test_err_loss_verdicts;
      Alcotest.test_case "err precision_of" `Quick test_err_precision_of;
      Alcotest.test_case "err precision bad k" `Quick test_err_precision_bad_k;
      Alcotest.test_case "err precision constant error" `Quick
        test_err_precision_constant_error;
      Test_support.Qseed.to_alcotest prop_precision_sigma_rule;
      Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
      Alcotest.test_case "histogram coverage" `Quick test_histogram_coverage;
      Alcotest.test_case "histogram chi-square" `Quick
        test_histogram_chi_square;
      Alcotest.test_case "sqnr known ratio" `Quick test_sqnr_known_ratio;
      Alcotest.test_case "sqnr no noise" `Quick test_sqnr_no_noise;
      Alcotest.test_case "sqnr of arrays" `Quick test_sqnr_of_arrays;
      Alcotest.test_case "sqnr vs theory" `Quick
        test_sqnr_theoretical_quantization;
    ] )
