(* Unit + property tests: Fixed — bit-true arithmetic, and the ground
   truth for the float-based simulation semantics. *)

open Fixrefine.Fixpt

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-12

let fmt n f = Qformat.make ~n ~f Sign_mode.Tc
let dt n f = Dtype.make "t" ~n ~f ~overflow:Overflow_mode.Saturate ()

let test_of_to_float () =
  let v, out = Fixed.of_float (dt 8 6) 0.75 in
  check float_t "roundtrip" 0.75 (Fixed.to_float v);
  check bool_t "no overflow" true (out.Quantize.overflow = None);
  check bool_t "mant" true (Int64.equal (Fixed.mant v) 48L)

let test_create_bounds () =
  Alcotest.check_raises "out of range"
    (Invalid_argument
       "Fixed.create: mantissa 128 out of range for <8,6,tc>") (fun () ->
      ignore (Fixed.create ~mant:128L ~fmt:(fmt 8 6)))

let test_add_exact () =
  let a, _ = Fixed.of_float (dt 8 6) 1.25 in
  let b, _ = Fixed.of_float (dt 8 6) 0.5 in
  let s = Fixed.add a b in
  check float_t "sum" 1.75 (Fixed.to_float s);
  check int_t "grew one bit" 9 (Qformat.n (Fixed.fmt s))

let test_add_mixed_lsb () =
  let a, _ = Fixed.of_float (dt 8 6) 1.25 in
  let b, _ = Fixed.of_float (dt 6 2) 3.25 in
  let s = Fixed.add a b in
  check float_t "aligned sum" 4.5 (Fixed.to_float s);
  check int_t "finest lsb" (-6) (Qformat.lsb_pos (Fixed.fmt s))

let test_sub () =
  let a, _ = Fixed.of_float (dt 8 6) 0.25 in
  let b, _ = Fixed.of_float (dt 8 6) 1.0 in
  check float_t "difference" (-0.75) (Fixed.to_float (Fixed.sub a b))

let test_neg () =
  let a, _ = Fixed.of_float (dt 8 6) (-2.0) in
  check float_t "negate min" 2.0 (Fixed.to_float (Fixed.neg a))

let test_mul_exact () =
  let a, _ = Fixed.of_float (dt 8 6) 1.5 in
  let b, _ = Fixed.of_float (dt 8 6) (-0.75) in
  let p = Fixed.mul a b in
  check float_t "product" (-1.125) (Fixed.to_float p);
  check int_t "width sums" 16 (Qformat.n (Fixed.fmt p));
  check int_t "lsb sums" (-12) (Qformat.lsb_pos (Fixed.fmt p))

let test_resize_quantizes () =
  let a, _ = Fixed.of_float (dt 12 10) 0.7001953125 in
  let b, out = Fixed.resize (dt 8 6) a in
  check bool_t "no overflow" true (out.Quantize.overflow = None);
  check float_t "requantized" 0.703125 (Fixed.to_float b)

let test_bits_roundtrip () =
  let a, _ = Fixed.of_float (dt 8 6) (-1.171875) in
  let bits = Fixed.bits a in
  check int_t "8 bits" 8 (List.length bits);
  let b = Fixed.of_bits (fmt 8 6) bits in
  check bool_t "roundtrip" true (Fixed.equal a b)

let test_bits_sign_extension () =
  (* -1 in <4,0>: 1111 *)
  let a = Fixed.create ~mant:(-1L) ~fmt:(fmt 4 0) in
  check bool_t "all ones" true (List.for_all Fun.id (Fixed.bits a));
  let b = Fixed.of_bits (fmt 4 0) [ true; true; true; true ] in
  check float_t "reads back -1" (-1.0) (Fixed.to_float b)

let test_width_guard () =
  let a = Fixed.zero (fmt 40 20) in
  let b = Fixed.zero (fmt 40 20) in
  Alcotest.check_raises "mul too wide"
    (Invalid_argument "Fixed.mul: derived format <80,40,tc> exceeds 62 bits")
    (fun () -> ignore (Fixed.mul a b))

(* The central cross-check: float-based simulation semantics agree with
   bit-true arithmetic for every representable operand pair. *)
let gen_fixed n f =
  let lo, hi = Fixrefine.Fixpt.Quantize.code_bounds (fmt n f) in
  QCheck2.Gen.map
    (fun m -> Fixed.create ~mant:(Int64.of_int m) ~fmt:(fmt n f))
    (QCheck2.Gen.int_range (Int64.to_int lo) (Int64.to_int hi))

let prop_float_sim_matches_bit_true_add =
  QCheck2.Test.make ~name:"float add = bit-true add" ~count:2000
    QCheck2.Gen.(pair (gen_fixed 12 6) (gen_fixed 12 6))
    (fun (a, b) ->
      Fixed.to_float (Fixed.add a b) = Fixed.to_float a +. Fixed.to_float b)

let prop_float_sim_matches_bit_true_mul =
  QCheck2.Test.make ~name:"float mul = bit-true mul" ~count:2000
    QCheck2.Gen.(pair (gen_fixed 12 6) (gen_fixed 12 6))
    (fun (a, b) ->
      Fixed.to_float (Fixed.mul a b) = Fixed.to_float a *. Fixed.to_float b)

let prop_resize_matches_quantize =
  QCheck2.Test.make ~name:"resize = Quantize.cast" ~count:2000
    (gen_fixed 16 10)
    (fun a ->
      let d = dt 8 6 in
      let r, _ = Fixed.resize d a in
      Fixed.to_float r = Fixrefine.Fixpt.Quantize.cast d (Fixed.to_float a))

let prop_bits_roundtrip =
  QCheck2.Test.make ~name:"bits roundtrip" ~count:2000 (gen_fixed 14 7)
    (fun a -> Fixed.equal a (Fixed.of_bits (Fixed.fmt a) (Fixed.bits a)))

let prop_sub_is_add_neg =
  QCheck2.Test.make ~name:"a - b = a + (-b) (values)" ~count:2000
    QCheck2.Gen.(pair (gen_fixed 10 4) (gen_fixed 10 4))
    (fun (a, b) ->
      Fixed.to_float (Fixed.sub a b)
      = Fixed.to_float (Fixed.add a (Fixed.neg b)))

let suite =
  ( "fixed",
    [
      Alcotest.test_case "of/to float" `Quick test_of_to_float;
      Alcotest.test_case "create bounds" `Quick test_create_bounds;
      Alcotest.test_case "add exact" `Quick test_add_exact;
      Alcotest.test_case "add mixed lsb" `Quick test_add_mixed_lsb;
      Alcotest.test_case "sub" `Quick test_sub;
      Alcotest.test_case "neg" `Quick test_neg;
      Alcotest.test_case "mul exact" `Quick test_mul_exact;
      Alcotest.test_case "resize quantizes" `Quick test_resize_quantizes;
      Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
      Alcotest.test_case "bits sign extension" `Quick
        test_bits_sign_extension;
      Alcotest.test_case "width guard" `Quick test_width_guard;
      Test_support.Qseed.to_alcotest prop_float_sim_matches_bit_true_add;
      Test_support.Qseed.to_alcotest prop_float_sim_matches_bit_true_mul;
      Test_support.Qseed.to_alcotest prop_resize_matches_quantize;
      Test_support.Qseed.to_alcotest prop_bits_roundtrip;
      Test_support.Qseed.to_alcotest prop_sub_is_add_neg;
    ] )
