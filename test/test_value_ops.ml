(* Unit + property tests: Sim.Value and Sim.Ops — the triple-computation
   operators (Fig. 2). *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-12

let v ?iv fx fl =
  let iv =
    match iv with
    | Some (lo, hi) -> Interval.make lo hi
    | None -> Interval.make (Float.min fx fl) (Float.max fx fl)
  in
  Sim.Value.with_range { (Sim.Value.const fx) with Sim.Value.fl } iv

let test_const () =
  let c = cst 1.5 in
  check float_t "fx" 1.5 (Sim.Value.fx c);
  check float_t "fl" 1.5 (Sim.Value.fl c);
  check bool_t "point interval" true
    (Interval.equal (Sim.Value.iv c) (Interval.of_point 1.5))

let test_add_components () =
  let a = v ~iv:(0.0, 2.0) 1.0 1.01 and b = v ~iv:(-1.0, 1.0) 0.5 0.49 in
  let s = a +: b in
  check float_t "fx" 1.5 (Sim.Value.fx s);
  check float_t "fl" 1.5 (Sim.Value.fl s);
  check bool_t "iv" true
    (Interval.equal (Sim.Value.iv s) (Interval.make (-1.0) 3.0))

let test_mul_components () =
  let a = v ~iv:(-1.0, 2.0) 1.5 1.5 and b = v ~iv:(0.0, 3.0) 2.0 2.0 in
  let p = a *: b in
  check float_t "fx" 3.0 (Sim.Value.fx p);
  check bool_t "iv" true
    (Interval.equal (Sim.Value.iv p) (Interval.make (-3.0) 6.0))

let test_error_tracks_difference () =
  let a = v 1.0 1.25 in
  check float_t "consumed error" 0.25 (Sim.Value.error a);
  let doubled = a +: a in
  check float_t "error adds" 0.5 (Sim.Value.error doubled)

let test_relational_on_fixed () =
  (* fx and fl disagree: the decision must follow fx (§4.2) *)
  let a = v 1.0 (-5.0) in
  check bool_t "fx steers >" true (a >: cst 0.0);
  check bool_t "fx steers <" false (a <: cst 0.0);
  check bool_t "=" true (a =: v 1.0 99.0)

let test_select_joins_ranges () =
  let a = v ~iv:(0.0, 1.0) 0.5 0.5 and b = v ~iv:(-4.0, -2.0) (-3.0) (-3.0) in
  let s = select true a b in
  check float_t "took a" 0.5 (Sim.Value.fx s);
  check bool_t "range joins both branches" true
    (Interval.equal (Sim.Value.iv s) (Interval.make (-4.0) 1.0))

let test_sign_slicer () =
  check float_t "positive" 1.0 (Sim.Value.fx (sign (cst 0.3)));
  check float_t "negative" (-1.0) (Sim.Value.fx (sign (cst (-0.3))));
  check float_t "zero is +1" 1.0 (Sim.Value.fx (sign (cst 0.0)))

let test_shift () =
  let a = v ~iv:(-1.0, 1.0) 0.5 0.5 in
  check float_t "shl 3" 4.0 (Sim.Value.fx (shift_left a 3));
  check float_t "shr 1" 0.25 (Sim.Value.fx (shift_right a 1));
  check bool_t "iv scaled" true
    (Interval.equal (Sim.Value.iv (shift_left a 3)) (Interval.make (-8.0) 8.0))

let test_abs_min_max () =
  let a = v ~iv:(-2.0, 1.0) (-1.5) (-1.5) in
  check float_t "abs" 1.5 (Sim.Value.fx (abs a));
  check float_t "min" (-1.5) (Sim.Value.fx (min_ a (cst 3.0)));
  check float_t "max" 3.0 (Sim.Value.fx (max_ a (cst 3.0)))

let test_cast_quantizes_fx_only () =
  let dtq = Fixpt.Dtype.make "q" ~n:4 ~f:2 () in
  let a = v 0.6 0.6 in
  let c = cast dtq a in
  check float_t "fx quantized" 0.5 (Sim.Value.fx c);
  check float_t "fl untouched" 0.6 (Sim.Value.fl c)

let test_cast_saturating_clamps_range () =
  let dtq =
    Fixpt.Dtype.make "q" ~n:4 ~f:2 ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let a = v ~iv:(-100.0, 100.0) 0.5 0.5 in
  let c = cast dtq a in
  check bool_t "range clamped to type" true
    (Interval.subset (Sim.Value.iv c)
       (Interval.make (Fixpt.Dtype.min_value dtq) (Fixpt.Dtype.max_value dtq)))

let gen_v =
  QCheck2.Gen.(
    map3
      (fun fx dfl w ->
        let lo = Float.min fx (fx +. dfl) -. Float.abs w in
        let hi = Float.max fx (fx +. dfl) +. Float.abs w in
        v ~iv:(lo, hi) fx (fx +. dfl))
      (float_range (-50.0) 50.0)
      (float_range (-1.0) 1.0)
      (float_range 0.0 10.0))

(* invariant: ops keep fx and fl inside the propagated interval when the
   operands were inside theirs *)
let prop_ops_keep_membership =
  let mem x = Interval.mem (Sim.Value.fx x) (Sim.Value.iv x) in
  QCheck2.Test.make ~name:"ops preserve fx ∈ iv" ~count:2000
    QCheck2.Gen.(pair gen_v gen_v)
    (fun (a, b) ->
      mem (a +: b) && mem (a -: b) && mem (a *: b) && mem (abs a)
      && mem (min_ a b) && mem (max_ a b) && mem (~-:a))

let prop_fl_membership =
  let memfl x = Interval.mem (Sim.Value.fl x) (Sim.Value.iv x) in
  QCheck2.Test.make ~name:"ops preserve fl ∈ iv" ~count:2000
    QCheck2.Gen.(pair gen_v gen_v)
    (fun (a, b) -> memfl (a +: b) && memfl (a *: b) && memfl (a -: b))

let suite =
  ( "value-ops",
    [
      Alcotest.test_case "const" `Quick test_const;
      Alcotest.test_case "add components" `Quick test_add_components;
      Alcotest.test_case "mul components" `Quick test_mul_components;
      Alcotest.test_case "error tracking" `Quick test_error_tracks_difference;
      Alcotest.test_case "relational on fixed" `Quick
        test_relational_on_fixed;
      Alcotest.test_case "select joins ranges" `Quick
        test_select_joins_ranges;
      Alcotest.test_case "sign slicer" `Quick test_sign_slicer;
      Alcotest.test_case "shift" `Quick test_shift;
      Alcotest.test_case "abs/min/max" `Quick test_abs_min_max;
      Alcotest.test_case "cast quantizes fx only" `Quick
        test_cast_quantizes_fx_only;
      Alcotest.test_case "saturating cast clamps range" `Quick
        test_cast_saturating_clamps_range;
      Test_support.Qseed.to_alcotest prop_ops_keep_membership;
      Test_support.Qseed.to_alcotest prop_fl_membership;
    ] )
