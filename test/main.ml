(* Test runner: aggregates every module's suite. *)

let () =
  Alcotest.run "fixrefine"
    [
      Test_modes.suite;
      Test_qformat.suite;
      Test_quantize.suite;
      Test_fixed.suite;
      Test_interval.suite;
      Test_stats.suite;
      Test_value_ops.suite;
      Test_signal.suite;
      Test_sim_infra.suite;
      Test_sfg.suite;
      Test_dsp_blocks.suite;
      Test_dsp_loops.suite;
      Test_refine_rules.suite;
      Test_flow.suite;
      Test_vhdl.suite;
      Test_extract.suite;
      Test_fft.suite;
      Test_integration.suite;
      Test_cic_cordic.suite;
      Test_misc.suite;
      Test_testbench.suite;
      Test_ddc.suite;
      Test_lms_fir.suite;
      Test_goertzel_agc.suite;
      Test_soak.suite;
      Test_coverage_extras.suite;
      Test_simplify.suite;
      Test_sfg_edges.suite;
      Test_hotpath.suite;
      Test_trace.suite;
      Test_merge.suite;
      Test_sweep.suite;
      Test_fault.suite;
      Test_compile.suite;
      Test_verify.suite;
      Test_serve.suite;
      Test_synchronizer.suite;
    ]
