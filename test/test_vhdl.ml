(* Unit tests: Vhdl — AST printing, entity emission, SFG mapping. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- expression printing ------------------------------------------------- *)

let test_expr_printing () =
  let open Vhdl.Ast in
  check string_t "binop" "a + b" (Vhdl.Emit.expr (id "a" +^ id "b"));
  check string_t "resize" "resize(x, 8)" (Vhdl.Emit.expr (resize (id "x") 8));
  check string_t "shift" "shift_left(x, 2)"
    (Vhdl.Emit.expr (shift_left_e (id "x") 2));
  check string_t "slice" "x(7 downto 0)" (Vhdl.Emit.expr (Slice (id "x", 7, 0)));
  check string_t "when" "a when c else b"
    (Vhdl.Emit.expr (When (id "c", id "a", id "b")))

let test_entity_skeleton () =
  let e =
    {
      Vhdl.Ast.entity_name = "dut";
      ports =
        [
          { Vhdl.Ast.port_name = "i_x"; dir = Vhdl.Ast.In; port_width = 8 };
          { Vhdl.Ast.port_name = "o_y"; dir = Vhdl.Ast.Out; port_width = 10 };
        ];
      signals = [ { Vhdl.Ast.sig_name = "s_t"; width = 12; comment = Some "<12,8,tc>" } ];
      body = [ Vhdl.Ast.Assign ("o_y", Vhdl.Ast.id "s_t") ];
      processes =
        [
          {
            Vhdl.Ast.label = "registers";
            clock = "clk";
            reset = Some "rst";
            assigns = [ ("s_t", Vhdl.Ast.id "i_x") ];
          };
        ];
    }
  in
  let text = Vhdl.Emit.entity e in
  check bool_t "library" true (contains "use ieee.numeric_std.all" text);
  check bool_t "entity" true (contains "entity dut is" text);
  check bool_t "in port" true (contains "i_x : in  signed(7 downto 0)" text);
  check bool_t "out port" true (contains "o_y : out signed(9 downto 0)" text);
  check bool_t "signal comment" true (contains "-- <12,8,tc>" text);
  check bool_t "clocked" true (contains "rising_edge(clk)" text);
  check bool_t "reset branch" true (contains "if rst = '1' then" text);
  check bool_t "sat helper" true (contains "function sat" text)

(* --- SFG mapping ---------------------------------------------------------- *)

let fir_graph () =
  let g = Sfg.Graph.create () in
  let _, y = Dsp.Fir.to_sfg g ~coefs:[| 0.25; 0.5; 0.25 |] ~input_range:(-1.0, 1.0) in
  Sfg.Graph.mark_output g "y" y;
  g

let test_of_sfg_fir () =
  let g = fir_graph () in
  let formats = Vhdl.Of_sfg.uniform_formats ~n:12 ~f:8 in
  let e = Vhdl.Of_sfg.entity ~name:"fir" ~formats g in
  let text = Vhdl.Emit.entity e in
  check bool_t "input port" true (contains "i_x" text);
  check bool_t "output port" true (contains "o_y" text);
  check bool_t "register process" true (contains "rising_edge" text);
  check bool_t "delay regs assigned in process" true
    (contains "s_d_0_ <= " text);
  check bool_t "mult" true (contains "*" text)

let test_of_sfg_saturating_node () =
  let g = fir_graph () in
  let formats = Vhdl.Of_sfg.uniform_formats ~n:12 ~f:8 in
  let e =
    Vhdl.Of_sfg.entity
      ~saturating:(fun n -> String.equal n "v[3]")
      ~name:"fir" ~formats g
  in
  let text = Vhdl.Emit.entity e in
  check bool_t "sat call on v[3]" true (contains "s_v_3_ <= sat(" text)

let test_of_sfg_quantize_modes () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let dt_round = Fixpt.Dtype.make "r" ~n:8 ~f:4 () in
  let dt_floor =
    Fixpt.Dtype.make "f" ~n:8 ~f:4 ~round:Fixpt.Round_mode.Floor
      ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let q1 = Sfg.Graph.quantize g ~name:"q_round" dt_round x in
  let q2 = Sfg.Graph.quantize g ~name:"q_floor" dt_floor x in
  Sfg.Graph.mark_output g "a" q1;
  Sfg.Graph.mark_output g "b" q2;
  let formats = Vhdl.Of_sfg.uniform_formats ~n:12 ~f:8 in
  let formats name =
    match name with
    | "q_round" | "q_floor" -> Fixpt.Qformat.make ~n:8 ~f:4 Fixpt.Sign_mode.Tc
    | n -> formats n
  in
  let text = Vhdl.Emit.entity (Vhdl.Of_sfg.entity ~name:"q" ~formats g) in
  (* round adds the half-lsb constant before truncation *)
  check bool_t "round-half logic" true (contains "+ 1" text);
  (* floor+saturate goes through sat() *)
  check bool_t "saturation on floor quantizer" true
    (contains "s_q_floor <= sat(" text)

let test_of_sfg_select () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let one = Sfg.Graph.const g ~name:"one" 1.0 in
  let m_one = Sfg.Graph.const g ~name:"m_one" (-1.0) in
  let y = Sfg.Graph.select g ~name:"y" x one m_one in
  Sfg.Graph.mark_output g "y" y;
  let text =
    Vhdl.Emit.entity
      (Vhdl.Of_sfg.entity ~name:"slicer"
         ~formats:(Vhdl.Of_sfg.uniform_formats ~n:8 ~f:4)
         g)
  in
  check bool_t "conditional" true (contains "when" text)

let test_of_sfg_div_unsupported () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:1.0 ~hi:2.0 in
  let y = Sfg.Graph.div g ~name:"y" x x in
  Sfg.Graph.mark_output g "y" y;
  check bool_t "raises Unsupported" true
    (try
       ignore
         (Vhdl.Of_sfg.entity ~name:"d"
            ~formats:(Vhdl.Of_sfg.uniform_formats ~n:8 ~f:4)
            g);
       false
     with Vhdl.Of_sfg.Unsupported _ -> true)

let test_of_sfg_name_sanitization () =
  let g = fir_graph () in
  let text =
    Vhdl.Emit.entity
      (Vhdl.Of_sfg.entity ~name:"fir"
         ~formats:(Vhdl.Of_sfg.uniform_formats ~n:8 ~f:4)
         g)
  in
  check bool_t "no brackets leak" true (not (contains "[" text))

let test_formats_of_types () =
  let dt = Fixpt.Dtype.make "t" ~n:9 ~f:7 () in
  let f = Vhdl.Of_sfg.formats_of_types [ ("a", dt) ] in
  check bool_t "mapped" true (Fixpt.Qformat.equal (f "a") (Fixpt.Dtype.fmt dt));
  check bool_t "default for unknown" true (Fixpt.Qformat.n (f "zzz") = 16)

(* Elaboration safety at wide widths: VHDL universal integers are only
   guaranteed 32 bits, so the emitted text must never clamp through a
   [2 ** (width - 1)] literal — the sat() bounds are bit aggregates.
   Also pins down that the dead clk port stub stayed dead. *)
let test_wide_width_no_power_literal () =
  List.iter
    (fun n ->
      let g = fir_graph () in
      let formats = Vhdl.Of_sfg.uniform_formats ~n ~f:(n - 4) in
      let e =
        Vhdl.Of_sfg.entity
          ~saturating:(fun _ -> true)
          ~name:(Printf.sprintf "fir%d" n)
          ~formats g
      in
      let text = Vhdl.Emit.entity e in
      let label fmt = Printf.sprintf fmt n in
      check bool_t (label "n=%d emits sat calls") true (contains "sat(" text);
      check bool_t
        (label "n=%d no power-of-two literal")
        false
        (contains "2 ** " text);
      check bool_t
        (label "n=%d aggregate max bound")
        true
        (contains "('0', others => '1')" text);
      check bool_t
        (label "n=%d aggregate min bound")
        true
        (contains "('1', others => '0')" text);
      check bool_t
        (label "n=%d declares wide signal")
        true
        (contains (Printf.sprintf "signed(%d downto 0)" (n - 1)) text))
    [ 32; 48; 63 ]

let test_const_mantissa () =
  (* constants become to_signed(mant, w) with mant = c / step *)
  let g = Sfg.Graph.create () in
  let c = Sfg.Graph.const g ~name:"k" 0.5 in
  Sfg.Graph.mark_output g "k" c;
  let text =
    Vhdl.Emit.entity
      (Vhdl.Of_sfg.entity ~name:"c"
         ~formats:(Vhdl.Of_sfg.uniform_formats ~n:8 ~f:4)
         g)
  in
  (* 0.5 at f=4 is mantissa 8 *)
  check bool_t "to_signed(8, 8)" true (contains "to_signed(8, 8)" text)

let suite =
  ( "vhdl",
    [
      Alcotest.test_case "expr printing" `Quick test_expr_printing;
      Alcotest.test_case "entity skeleton" `Quick test_entity_skeleton;
      Alcotest.test_case "of_sfg fir" `Quick test_of_sfg_fir;
      Alcotest.test_case "of_sfg saturation" `Quick
        test_of_sfg_saturating_node;
      Alcotest.test_case "of_sfg quantize modes" `Quick
        test_of_sfg_quantize_modes;
      Alcotest.test_case "of_sfg select" `Quick test_of_sfg_select;
      Alcotest.test_case "of_sfg div unsupported" `Quick
        test_of_sfg_div_unsupported;
      Alcotest.test_case "of_sfg sanitization" `Quick
        test_of_sfg_name_sanitization;
      Alcotest.test_case "formats_of_types" `Quick test_formats_of_types;
      Alcotest.test_case "wide widths elaborate-safe" `Quick
        test_wide_width_no_power_literal;
      Alcotest.test_case "const mantissa" `Quick test_const_mantissa;
    ] )
