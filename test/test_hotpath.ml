(* Regression + property tests for the simulation-engine hot path:
   int64-boundary quantization (n = 62/63), wrap_code at full width,
   int64-vs-float path agreement, duplicate-name registration, and the
   RNG-reseeding reset semantics. *)

open Fixrefine
open Fixrefine.Fixpt

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-12
let int64_t = Alcotest.int64

let dt ?(n = 8) ?(f = 6) ?(sign = Sign_mode.Tc)
    ?(overflow = Overflow_mode.Wrap) ?(round = Round_mode.Round) () =
  Dtype.make "t" ~n ~f ~sign ~overflow ~round ()

(* --- int64 boundary: n = 62 stays on the exact integer path --------- *)

let test_n62_boundary_codes () =
  (* <62,0>: step 1, codes [-2^61, 2^61-1].  Exercise float-exact codes
     near the bounds through the public quantize API. *)
  let sat = dt ~n:62 ~f:0 ~overflow:Overflow_mode.Saturate () in
  let hi = Int64.to_float (Int64.sub (Int64.shift_left 1L 61) 1L) in
  (* 2^61 - 1024 = 1024 * (2^51 - 1): float-exact, in range *)
  let exact_in = Float.ldexp 1.0 61 -. 1024.0 in
  check float_t "in-range code passes" exact_in (Quantize.cast sat exact_in);
  (* 2^61 (= hi + 1 in code space): float-exact, saturates to hi *)
  let above = Float.ldexp 1.0 61 in
  check float_t "hi+1 saturates to hi" hi (Quantize.cast sat above);
  let lo = -.Float.ldexp 1.0 61 in
  check float_t "lo passes" lo (Quantize.cast sat lo);
  check float_t "lo-1024 saturates to lo" lo
    (Quantize.cast sat (lo -. 1024.0));
  (* wrap at the same magnitude: 2^61 wraps to -2^61 *)
  let wr = dt ~n:62 ~f:0 ~overflow:Overflow_mode.Wrap () in
  check float_t "hi+1 wraps to lo" lo (Quantize.cast wr above)

let test_n62_int64_path_selected () =
  let c = Quantize.of_dtype (dt ~n:62 ~f:0 ()) in
  check bool_t "n=62 on int64 path" true c.Quantize.int64_path;
  let c63 = Quantize.of_dtype (dt ~n:63 ~f:0 ()) in
  check bool_t "n=63 on float fallback" false c63.Quantize.int64_path

(* --- wrap_code at full width (n = 63/64) ---------------------------- *)

let test_wrap_code_n63 () =
  let fmt = Qformat.make ~n:63 ~f:0 Sign_mode.Tc in
  let lo, hi = Quantize.code_bounds fmt in
  check int64_t "lo = -2^62" (Int64.neg (Int64.shift_left 1L 62)) lo;
  check int64_t "hi = 2^62-1" (Int64.sub (Int64.shift_left 1L 62) 1L) hi;
  (* in-range codes are unchanged *)
  check int64_t "lo fixed" lo (Quantize.wrap_code fmt lo);
  check int64_t "hi fixed" hi (Quantize.wrap_code fmt hi);
  check int64_t "0 fixed" 0L (Quantize.wrap_code fmt 0L);
  (* one past each bound wraps to the opposite bound *)
  check int64_t "hi+1 wraps to lo" lo
    (Quantize.wrap_code fmt (Int64.add hi 1L));
  check int64_t "lo-1 wraps to hi" hi
    (Quantize.wrap_code fmt (Int64.sub lo 1L))

let test_wrap_code_n64_tc () =
  (* n = 64 tc: every int64 is its own code — identity *)
  let fmt = Qformat.make ~n:64 ~f:0 Sign_mode.Tc in
  check int64_t "max_int fixed" Int64.max_int
    (Quantize.wrap_code fmt Int64.max_int);
  check int64_t "min_int fixed" Int64.min_int
    (Quantize.wrap_code fmt Int64.min_int)

let test_wrap_code_n63_unsigned () =
  let fmt = Qformat.make ~n:63 ~f:0 Sign_mode.Us in
  let _, hi = Quantize.code_bounds fmt in
  check int64_t "hi fixed" hi (Quantize.wrap_code fmt hi);
  check int64_t "hi+1 wraps to 0" 0L
    (Quantize.wrap_code fmt (Int64.add hi 1L));
  check int64_t "-1 wraps to hi" hi (Quantize.wrap_code fmt (-1L))

let prop_wrap_code_small_n_matches_modular =
  (* the sign-extension/masking implementation must agree with the
     naive lo + ((code - lo) mod span) formula wherever the span fits *)
  QCheck2.Test.make ~name:"wrap_code = modular reduction (n <= 62)"
    ~count:1000
    QCheck2.Gen.(
      triple (int_range 2 62) bool
        (map Int64.of_int (int_range (-4611686018427387904) 4611686018427387903)))
    (fun (n, signed, code) ->
      let sign = if signed then Sign_mode.Tc else Sign_mode.Us in
      let fmt = Qformat.make ~n ~f:0 sign in
      let lo, hi = Quantize.code_bounds fmt in
      let span = Int64.add (Int64.sub hi lo) 1L in
      let m = Int64.rem (Int64.sub code lo) span in
      let m = if Int64.compare m 0L < 0 then Int64.add m span else m in
      let expected = Int64.add lo m in
      Int64.equal expected (Quantize.wrap_code fmt code))

(* --- int64 path vs float fallback agreement ------------------------- *)

let prop_paths_agree_saturate =
  QCheck2.Test.make ~name:"apply_int64/apply_float agree (saturate)"
    ~count:1000
    QCheck2.Gen.(
      pair (int_range 2 50)
        (map Int64.to_float
           (map Int64.of_int (int_range (-1073741824) 1073741824))))
    (fun (n, code) ->
      let c =
        Quantize.of_dtype
          (dt ~n ~f:0 ~overflow:Overflow_mode.Saturate ())
      in
      let vi, ei = Quantize.apply_int64 c code in
      let vf, ef = Quantize.apply_float c code in
      vi = vf && (ei = None) = (ef = None))

let prop_paths_agree_wrap =
  QCheck2.Test.make ~name:"apply_int64/apply_float agree (wrap)"
    ~count:1000
    QCheck2.Gen.(
      pair (int_range 2 50)
        (map Int64.to_float
           (map Int64.of_int (int_range (-1073741824) 1073741824))))
    (fun (n, code) ->
      let c = Quantize.of_dtype (dt ~n ~f:0 ~overflow:Overflow_mode.Wrap ()) in
      let vi, ei = Quantize.apply_int64 c code in
      let vf, ef = Quantize.apply_float c code in
      (* both operands and the span are exact floats at these
         magnitudes, so agreement is exact *)
      vi = vf && (ei = None) = (ef = None))

let prop_exec_into_matches_exec =
  (* the allocation-free hot path and the boxed API are the same cast *)
  QCheck2.Test.make ~name:"exec_into = exec" ~count:1000
    QCheck2.Gen.(
      triple
        (float_range (-1.0e6) 1.0e6)
        (int_range 2 30)
        (pair bool bool))
    (fun (v, n, (saturate, nearest)) ->
      let d =
        dt ~n ~f:(n / 2)
          ~overflow:
            (if saturate then Overflow_mode.Saturate else Overflow_mode.Wrap)
          ~round:(if nearest then Round_mode.Round else Round_mode.Floor)
          ()
      in
      let c = Quantize.of_dtype d in
      let s = Quantize.create_scratch () in
      let value = Quantize.exec_into c v s in
      let out = Quantize.exec c v in
      value = out.Quantize.value
      && s.Quantize.rerr = out.Quantize.rounding_error
      && (s.Quantize.flag <> 0.0) = (out.Quantize.overflow <> None))

(* --- duplicate registration ----------------------------------------- *)

let test_duplicate_name_raises () =
  let env = Sim.Env.create () in
  let _a = Sim.Signal.create env "x" in
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Env.register: duplicate signal name \"x\"") (fun () ->
      ignore (Sim.Signal.create env "x"));
  (* a registered signal cannot shadow a combinational one either *)
  Alcotest.check_raises "duplicate reg rejected"
    (Invalid_argument "Env.register: duplicate signal name \"x\"") (fun () ->
      ignore (Sim.Signal.create_reg env "x"))

let test_find_after_many () =
  let env = Sim.Env.create () in
  for i = 0 to 99 do
    ignore (Sim.Signal.create env (Printf.sprintf "s%d" i))
  done;
  check bool_t "find hits" true (Sim.Env.find env "s57" <> None);
  check bool_t "find misses" true (Sim.Env.find env "nope" = None);
  check int_t "declaration order kept" 100
    (List.length (Sim.Env.signals env));
  check bool_t "order is registration order" true
    (List.mapi (fun i e -> e.Sim.Env.name = Printf.sprintf "s%d" i)
       (Sim.Env.signals env)
    |> List.for_all Fun.id)

(* --- reset reseeds the environment RNG ------------------------------ *)

(* A little design with an [error()] injection, so simulation consumes
   the environment RNG: two reset+run cycles must produce identical
   statistics now that [reset] rewinds the noise stream. *)
let noisy_run env s =
  Sim.Env.reset env;
  let open Sim.Ops in
  for i = 1 to 200 do
    s <-- (cst (Float.of_int (i mod 17)) *: cst 0.125);
    Sim.Env.tick env
  done;
  match Sim.Signal.stat_range (Sim.Env.find_exn env "n") with
  | Some (lo, hi) -> (lo, hi)
  | None -> Alcotest.fail "no samples recorded"

let test_reset_replays_noise () =
  let env = Sim.Env.create ~seed:77 () in
  let s = Sim.Signal.create_reg env "n" ~dtype:(dt ()) in
  Sim.Signal.error s 0.25;
  let lo1, hi1 = noisy_run env s in
  let lo2, hi2 = noisy_run env s in
  check float_t "identical min across reset+rerun" lo1 lo2;
  check float_t "identical max across reset+rerun" hi1 hi2;
  (* the produced-error population must replay exactly too *)
  let stats_of () =
    let e = Sim.Signal.err_stats s in
    Stats.Running.mean (Stats.Err_stats.produced e)
  in
  let m1 = stats_of () in
  let _ = noisy_run env s in
  check float_t "identical produced-error mean" m1 (stats_of ())

let test_reset_opt_out_keeps_stream () =
  (* with ~reseed:false the noise stream continues instead of rewinding *)
  let env = Sim.Env.create ~seed:3 () in
  let r1 = Stats.Rng.float (Sim.Env.rng env) in
  Sim.Env.reset env ~reseed:false;
  let r2 = Stats.Rng.float (Sim.Env.rng env) in
  check bool_t "stream continued" true (r1 <> r2);
  Sim.Env.reset env;
  let r3 = Stats.Rng.float (Sim.Env.rng env) in
  check float_t "default reset rewinds" r1 r3

let test_rng_reseed_rewinds () =
  let rng = Stats.Rng.create ~seed:12345 in
  let a = Array.init 8 (fun _ -> Stats.Rng.float rng) in
  Stats.Rng.reseed rng ~seed:12345;
  let b = Array.init 8 (fun _ -> Stats.Rng.float rng) in
  check bool_t "identical stream after reseed" true (a = b)

(* --- dirty-list tick semantics -------------------------------------- *)

let test_tick_commits_only_staged () =
  let env = Sim.Env.create () in
  let a = Sim.Signal.create_reg env "a" in
  let b = Sim.Signal.create_reg env "b" in
  let open Sim.Ops in
  a <-- cst 1.0;
  b <-- cst 2.0;
  Sim.Env.tick env;
  (* second cycle writes only [a]; [b] must hold *)
  a <-- cst 3.0;
  Sim.Env.tick env;
  check float_t "written reg committed" 3.0 (Sim.Signal.peek_fx a);
  check float_t "unwritten reg held" 2.0 (Sim.Signal.peek_fx b);
  (* double write in one cycle: last one wins, single dirty entry *)
  a <-- cst 4.0;
  a <-- cst 5.0;
  Sim.Env.tick env;
  check float_t "last write wins" 5.0 (Sim.Signal.peek_fx a)

let suite =
  ( "hot-path",
    [
      Alcotest.test_case "n=62 boundary codes" `Quick test_n62_boundary_codes;
      Alcotest.test_case "n=62/63 path selection" `Quick
        test_n62_int64_path_selected;
      Alcotest.test_case "wrap_code n=63" `Quick test_wrap_code_n63;
      Alcotest.test_case "wrap_code n=64 tc" `Quick test_wrap_code_n64_tc;
      Alcotest.test_case "wrap_code n=63 unsigned" `Quick
        test_wrap_code_n63_unsigned;
      Alcotest.test_case "duplicate name raises" `Quick
        test_duplicate_name_raises;
      Alcotest.test_case "find after many" `Quick test_find_after_many;
      Alcotest.test_case "reset replays noise" `Quick test_reset_replays_noise;
      Alcotest.test_case "reset opt-out keeps stream" `Quick
        test_reset_opt_out_keeps_stream;
      Alcotest.test_case "rng reseed rewinds" `Quick test_rng_reseed_rewinds;
      Alcotest.test_case "tick commits only staged" `Quick
        test_tick_commits_only_staged;
      Test_support.Qseed.to_alcotest prop_wrap_code_small_n_matches_modular;
      Test_support.Qseed.to_alcotest prop_paths_agree_saturate;
      Test_support.Qseed.to_alcotest prop_paths_agree_wrap;
      Test_support.Qseed.to_alcotest prop_exec_into_matches_exec;
    ] )
