(* Unit + property tests: Dsp.Fft. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t eps = Alcotest.float eps

let cpair (r, i) = (Sim.Value.const r, Sim.Value.const i)

let run_fft ?(scale = false) input =
  let env = Sim.Env.create () in
  let fft = Dsp.Fft.create env ~scale ~n:(Array.length input) () in
  let out = Dsp.Fft.transform fft (Array.map cpair input) in
  (env, fft, Array.map (fun (r, i) -> (Sim.Value.fx r, Sim.Value.fx i)) out)

let test_impulse () =
  (* FFT of delta = all-ones spectrum *)
  let input = Array.init 8 (fun i -> if i = 0 then (1.0, 0.0) else (0.0, 0.0)) in
  let _, _, out = run_fft input in
  Array.iter
    (fun (r, i) ->
      check (float_t 1e-9) "re" 1.0 r;
      check (float_t 1e-9) "im" 0.0 i)
    out

let test_dc () =
  (* FFT of constant = n·delta at bin 0 *)
  let input = Array.make 8 (1.0, 0.0) in
  let _, _, out = run_fft input in
  check (float_t 1e-9) "bin 0" 8.0 (fst out.(0));
  for k = 1 to 7 do
    check (float_t 1e-9) "other bins re" 0.0 (fst out.(k));
    check (float_t 1e-9) "other bins im" 0.0 (snd out.(k))
  done

let test_single_tone () =
  (* complex exponential at bin 3 of 16 *)
  let n = 16 in
  let input =
    Array.init n (fun j ->
        let a = 2.0 *. Float.pi *. 3.0 *. Float.of_int j /. Float.of_int n in
        (cos a, sin a))
  in
  let _, _, out = run_fft input in
  check (float_t 1e-9) "peak at 3" (Float.of_int n) (fst out.(3));
  for k = 0 to n - 1 do
    if k <> 3 then begin
      let r, i = out.(k) in
      check bool_t "leak-free" true (Float.abs r +. Float.abs i < 1e-9)
    end
  done

let test_matches_reference () =
  let rng = Stats.Rng.create ~seed:5 in
  let input =
    Array.init 32 (fun _ ->
        (Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0,
         Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
  in
  let expected = Dsp.Fft.reference input in
  let _, _, out = run_fft input in
  Array.iteri
    (fun k (r, i) ->
      let er, ei = expected.(k) in
      check (float_t 1e-9) (Printf.sprintf "re %d" k) er r;
      check (float_t 1e-9) (Printf.sprintf "im %d" k) ei i)
    out

let test_scaled_matches_reference () =
  let rng = Stats.Rng.create ~seed:6 in
  let input =
    Array.init 16 (fun _ -> (Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0, 0.0))
  in
  let expected = Dsp.Fft.reference ~scale:true input in
  let _, _, out = run_fft ~scale:true input in
  Array.iteri
    (fun k (r, i) ->
      let er, ei = expected.(k) in
      check (float_t 1e-9) (Printf.sprintf "re %d" k) er r;
      check (float_t 1e-9) (Printf.sprintf "im %d" k) ei i)
    out

let test_parseval () =
  let rng = Stats.Rng.create ~seed:7 in
  let input =
    Array.init 16 (fun _ ->
        (Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0,
         Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
  in
  let _, _, out = run_fft input in
  let energy x = Array.fold_left (fun a (r, i) -> a +. (r *. r) +. (i *. i)) 0.0 x in
  check (float_t 1e-9) "Parseval" (16.0 *. energy input) (energy out)

let test_msb_growth_unscaled () =
  (* range monitors across stages: unscaled grows ~1 bit/stage *)
  let rng = Stats.Rng.create ~seed:8 in
  let env = Sim.Env.create () in
  let n = 16 in
  let fft = Dsp.Fft.create env ~n () in
  for _ = 1 to 30 do
    let input =
      Array.init n (fun _ ->
          cpair (Stats.Rng.pam2 rng, Stats.Rng.pam2 rng))
    in
    ignore (Dsp.Fft.transform fft input);
    Sim.Env.tick env
  done;
  let max_msb s =
    List.fold_left
      (fun acc sg ->
        match Refine.Msb_rules.msb_of_range (Sim.Signal.stat_range sg) with
        | Some m -> max acc m
        | None -> acc)
      min_int (Dsp.Fft.stage_signals fft s)
  in
  let first = max_msb 0 and last = max_msb (Dsp.Fft.stage_count fft) in
  check bool_t "grows at least 3 bits over 4 stages" true (last - first >= 3)

let test_msb_flat_scaled () =
  let rng = Stats.Rng.create ~seed:9 in
  let env = Sim.Env.create () in
  let n = 16 in
  let fft = Dsp.Fft.create env ~scale:true ~n () in
  for _ = 1 to 30 do
    let input =
      Array.init n (fun _ -> cpair (Stats.Rng.pam2 rng, Stats.Rng.pam2 rng))
    in
    ignore (Dsp.Fft.transform fft input);
    Sim.Env.tick env
  done;
  let max_msb s =
    List.fold_left
      (fun acc sg ->
        match Refine.Msb_rules.msb_of_range (Sim.Signal.stat_range sg) with
        | Some m -> max acc m
        | None -> acc)
      min_int (Dsp.Fft.stage_signals fft s)
  in
  check bool_t "no growth" true
    (max_msb (Dsp.Fft.stage_count fft) <= max_msb 0 + 1)

let test_bad_size_rejected () =
  let env = Sim.Env.create () in
  check bool_t "non power of 2" true
    (try
       ignore (Dsp.Fft.create env ~n:12 ());
       false
     with Invalid_argument _ -> true)

let prop_linearity =
  QCheck2.Test.make ~name:"fft is linear" ~count:50
    QCheck2.Gen.(
      pair (list_size (return 8) (float_range (-1.0) 1.0))
           (list_size (return 8) (float_range (-1.0) 1.0)))
    (fun (a, b) ->
      let xa = Array.of_list (List.map (fun v -> (v, 0.0)) a) in
      let xb = Array.of_list (List.map (fun v -> (v, 0.0)) b) in
      let xsum = Array.map2 (fun (r1, i1) (r2, i2) -> (r1 +. r2, i1 +. i2)) xa xb in
      let fa = Dsp.Fft.reference xa
      and fb = Dsp.Fft.reference xb
      and fs = Dsp.Fft.reference xsum in
      Array.for_all
        (fun k ->
          let r1, i1 = fa.(k) and r2, i2 = fb.(k) and rs, is = fs.(k) in
          Float.abs (rs -. r1 -. r2) < 1e-9 && Float.abs (is -. i1 -. i2) < 1e-9)
        (Array.init 8 Fun.id))

let suite =
  ( "fft",
    [
      Alcotest.test_case "impulse" `Quick test_impulse;
      Alcotest.test_case "dc" `Quick test_dc;
      Alcotest.test_case "single tone" `Quick test_single_tone;
      Alcotest.test_case "matches reference" `Quick test_matches_reference;
      Alcotest.test_case "scaled matches reference" `Quick
        test_scaled_matches_reference;
      Alcotest.test_case "parseval" `Quick test_parseval;
      Alcotest.test_case "msb growth unscaled" `Quick
        test_msb_growth_unscaled;
      Alcotest.test_case "msb flat scaled" `Quick test_msb_flat_scaled;
      Alcotest.test_case "bad size" `Quick test_bad_size_rejected;
      Test_support.Qseed.to_alcotest prop_linearity;
    ] )
