(* Tests: Sfg.Simplify and Sfg.Wordlength edge cases — constant folding
   across cast nodes, degenerate (zero-width) intervals, and
   feedback-loop range explosion detection with its range() remedy. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let range_is r name lo hi =
  match Sfg.Range_analysis.range_of r name with
  | Some iv ->
      (not (Interval.is_empty iv))
      && Float.equal (Interval.lo iv) lo
      && Float.equal (Interval.hi iv) hi
  | None -> false

(* --- constant folding across cast nodes ---------------------------------- *)

let test_fold_across_quantize () =
  (* cast of a constant folds to the quantized constant: 0.3 at <8,4>
     rounds to 5/16 = 0.3125 *)
  let g = Sfg.Graph.create () in
  let dt = Fixpt.Dtype.make "q" ~n:8 ~f:4 () in
  let c = Sfg.Graph.const g ~name:"c" 0.3 in
  let q = Sfg.Graph.quantize g ~name:"cq" dt c in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let y = Sfg.Graph.mul g ~name:"y" x q in
  Sfg.Graph.mark_output g "y" y;
  let g', st = Sfg.Simplify.run g in
  check bool_t "quantize folded" true (st.Sfg.Simplify.folded >= 1);
  let r = Sfg.Range_analysis.run g' in
  check bool_t "y range uses quantized constant" true
    (range_is r "y" (-0.3125) 0.3125)

let test_fold_cast_chain () =
  (* two stacked casts over a constant fold all the way down: 0.3 at
     <12,8> is 77/256 = 0.30078125, re-cast at <6,2> rounds to 1/4 *)
  let g = Sfg.Graph.create () in
  let fine = Fixpt.Dtype.make "fine" ~n:12 ~f:8 () in
  let coarse = Fixpt.Dtype.make "coarse" ~n:6 ~f:2 () in
  let c = Sfg.Graph.const g ~name:"c" 0.3 in
  let q1 = Sfg.Graph.quantize g ~name:"q1" fine c in
  let q2 = Sfg.Graph.quantize g ~name:"q2" coarse q1 in
  Sfg.Graph.mark_output g "q2" q2;
  let g', st = Sfg.Simplify.run g in
  check bool_t "both casts folded" true (st.Sfg.Simplify.folded >= 2);
  let r = Sfg.Range_analysis.run g' in
  check bool_t "fully folded constant" true (range_is r "q2" 0.25 0.25);
  (* execution semantics preserved *)
  let out = Sfg.Graph.simulate g' ~steps:1 ~inputs:(fun _ _ -> 0.0) in
  check bool_t "simulated value" true
    (match List.assoc_opt "q2" out with
    | Some a -> Float.equal a.(0) 0.25
    | None -> false)

let test_fold_saturate_of_const () =
  (* an explicit range() clamp over a constant folds too *)
  let g = Sfg.Graph.create () in
  let c = Sfg.Graph.const g ~name:"c" 3.0 in
  let s = Sfg.Graph.saturate g ~name:"s" c ~lo:(-1.0) ~hi:1.0 in
  Sfg.Graph.mark_output g "s" s;
  let g', st = Sfg.Simplify.run g in
  check bool_t "clamp folded" true (st.Sfg.Simplify.folded >= 1);
  let r = Sfg.Range_analysis.run g' in
  check bool_t "clamped constant" true (range_is r "s" 1.0 1.0)

(* --- degenerate / zero-width intervals ----------------------------------- *)

let test_zero_width_input () =
  (* a point input is legal; ranges stay points through the datapath *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:0.75 ~hi:0.75 in
  let y = Sfg.Graph.add g ~name:"y" x x in
  Sfg.Graph.mark_output g "y" y;
  let r = Sfg.Range_analysis.run g in
  check bool_t "point in, point out" true (range_is r "y" 1.5 1.5);
  check int_t "nothing exploded" 0
    (List.length r.Sfg.Range_analysis.exploded)

let test_zero_constant_wordlength () =
  (* the all-zero interval must not break MSB assignment *)
  let g = Sfg.Graph.create () in
  let z = Sfg.Graph.const g ~name:"z" 0.0 in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let y = Sfg.Graph.add g ~name:"y" x z in
  Sfg.Graph.mark_output g "y" y;
  let res = Sfg.Wordlength.assign g ~output:"y" ~sigma_budget:1e-3 in
  check int_t "nothing exploded" 0 (List.length res.Sfg.Wordlength.exploded);
  check bool_t "finite total" true (res.Sfg.Wordlength.total_bits <> None);
  let y_assignment =
    List.find
      (fun (a : Sfg.Wordlength.assignment) -> a.Sfg.Wordlength.name = "y")
      res.Sfg.Wordlength.assignments
  in
  check bool_t "y has an MSB" true (y_assignment.Sfg.Wordlength.msb <> None)

let test_zero_width_clamp () =
  (* a zero-width range() pins the signal to one value *)
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-4.0) ~hi:4.0 in
  let s = Sfg.Graph.saturate g ~name:"s" x ~lo:0.5 ~hi:0.5 in
  let y = Sfg.Graph.mul g ~name:"y" s s in
  Sfg.Graph.mark_output g "y" y;
  let r = Sfg.Range_analysis.run g in
  check bool_t "pinned" true (range_is r "s" 0.5 0.5);
  check bool_t "product of pins" true (range_is r "y" 0.25 0.25)

let test_wordlength_rejects_bad_budget () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  Sfg.Graph.mark_output g "y" (Sfg.Graph.neg g ~name:"y" x);
  check bool_t "zero budget raises" true
    (try
       ignore (Sfg.Wordlength.assign g ~output:"y" ~sigma_budget:0.0);
       false
     with Invalid_argument _ -> true)

(* --- feedback-loop range explosion --------------------------------------- *)

(* gain-1 accumulator: acc' = acc + x diverges, the analysis must
   diagnose the explosion rather than report a bound *)
let accumulator ?clamp () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let acc = Sfg.Graph.delay g "acc" in
  let s = Sfg.Graph.add g ~name:"s" acc x in
  let fed =
    match clamp with
    | None -> s
    | Some (lo, hi) -> Sfg.Graph.saturate g ~name:"s_clamped" s ~lo ~hi
  in
  Sfg.Graph.connect_delay g acc fed;
  Sfg.Graph.mark_output g "s" s;
  g

let test_explosion_detected () =
  let g = accumulator () in
  let r = Sfg.Range_analysis.run g in
  check bool_t "accumulator explodes" true
    (List.mem "s" r.Sfg.Range_analysis.exploded
    || List.mem "acc" r.Sfg.Range_analysis.exploded);
  check bool_t "no MSB for exploded node" true
    (Sfg.Range_analysis.msb_of r "s" = None)

let test_explosion_poisons_wordlength () =
  let g = accumulator () in
  let res = Sfg.Wordlength.assign g ~output:"s" ~sigma_budget:1e-3 in
  check bool_t "assignment reports explosion" true
    (res.Sfg.Wordlength.exploded <> []);
  check bool_t "no finite total" true (res.Sfg.Wordlength.total_bits = None)

let test_clamp_remedies_explosion () =
  (* the paper's remedy: a range() annotation inside the loop bounds
     the fixpoint, every node gets a finite format again *)
  let g = accumulator ~clamp:(-8.0, 8.0) () in
  let r = Sfg.Range_analysis.run g in
  check int_t "nothing exploded" 0 (List.length r.Sfg.Range_analysis.exploded);
  check bool_t "loop output bounded" true
    (match Sfg.Range_analysis.range_of r "s" with
    | Some iv ->
        (not (Interval.is_exploded iv)) && Interval.hi iv <= 9.0 +. 1e-9
    | None -> false);
  let res = Sfg.Wordlength.assign g ~output:"s" ~sigma_budget:1e-3 in
  check bool_t "finite total" true (res.Sfg.Wordlength.total_bits <> None)

let suite =
  ( "sfg_edges",
    [
      Alcotest.test_case "fold across quantize" `Quick
        test_fold_across_quantize;
      Alcotest.test_case "fold cast chain" `Quick test_fold_cast_chain;
      Alcotest.test_case "fold saturate of const" `Quick
        test_fold_saturate_of_const;
      Alcotest.test_case "zero-width input" `Quick test_zero_width_input;
      Alcotest.test_case "zero constant wordlength" `Quick
        test_zero_constant_wordlength;
      Alcotest.test_case "zero-width clamp" `Quick test_zero_width_clamp;
      Alcotest.test_case "non-positive budget rejected" `Quick
        test_wordlength_rejects_bad_budget;
      Alcotest.test_case "explosion detected" `Quick test_explosion_detected;
      Alcotest.test_case "explosion poisons wordlength" `Quick
        test_explosion_poisons_wordlength;
      Alcotest.test_case "range() remedies explosion" `Quick
        test_clamp_remedies_explosion;
    ] )
