(* Unit + property tests: the bit-level verification oracle.

   The contract under test is agreement with brute force: on graphs
   small enough to enumerate, [Verify.Engine]'s exhaustive verdicts
   must match what simulating {e every} input sequence says — [Proved]
   no-overflow means no sequence makes any quantizer overflow, and a
   [Refuted] counterexample must actually reproduce its violation in
   the interpreter.  Plus the pinned regression pair: the
   under-provisioned biquad is refuted (and its counterexample drives
   [Refine.Eval.evaluate_compiled] into a nonzero overflow count) while
   the one-extra-MSB repair of the same filter is proved. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- brute-force oracle ------------------------------------------------ *)

(* All grid points of [dt] inside [lo, hi] — the same admissible-input
   alphabet the engine derives for an input whose sole consumer is a
   quantizer of type [dt]. *)
let grid dt ~lo ~hi =
  let step = Fixpt.Dtype.step dt in
  let klo = int_of_float (Float.round (lo /. step)) in
  let khi = int_of_float (Float.round (hi /. step)) in
  List.init (khi - klo + 1) (fun i -> float_of_int (klo + i) *. step)

(* Simulate [g] on one input sequence and recompute every [Quantize]
   node's cast from its input trace — [Some (node, step)] at the first
   overflow, independent of the engine's own bookkeeping. *)
let first_overflow g ~seq =
  let steps = Array.length seq in
  let traces =
    Sfg.Graph.simulate g ~steps ~inputs:(fun _name step -> seq.(step))
  in
  let trace_of id = List.assoc (Sfg.Graph.node g id).Sfg.Node.name traces in
  let found = ref None in
  List.iter
    (fun (n : Sfg.Node.t) ->
      match n.Sfg.Node.op with
      | Sfg.Node.Quantize dt ->
          let src = trace_of (List.hd n.Sfg.Node.inputs) in
          Array.iteri
            (fun step v ->
              let o = Fixpt.Quantize.quantize dt v in
              if o.Fixpt.Quantize.overflow <> None && !found = None then
                found := Some (n.Sfg.Node.name, step))
            src
      | _ -> ())
    (Sfg.Graph.nodes g);
  !found

(* Every sequence of length [len] over [alphabet], applied to [f]. *)
let rec for_all_seqs alphabet ~len ~prefix f =
  if len = 0 then f (Array.of_list (List.rev prefix))
  else
    List.for_all
      (fun v -> for_all_seqs alphabet ~len:(len - 1) ~prefix:(v :: prefix) f)
      alphabet

(* --- a random family of small closed feedback filters ------------------ *)

(* First-order feedback section: x in [-1,1] -> input quantizer (sole
   consumer, grid alphabet of 2^(fin+1)+1 letters) -> y = Q_acc(xq +/-
   c*y1) with y1 = z^-1 y.  Small enough that the engine's alphabet is
   always exhaustive and brute force over all length-4 sequences is
   cheap; varied enough (gain, accumulator width) that both verdicts
   occur. *)
let section1 ~fin ~acc_bits ~coef ~sub () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let in_dt = Fixpt.Dtype.make "xq" ~n:(fin + 2) ~f:fin () in
  let xq = Sfg.Graph.quantize g ~name:"xq" in_dt x in
  let y1 = Sfg.Graph.delay g "y1" in
  let c = Sfg.Graph.const g ~name:"c" coef in
  let cy = Sfg.Graph.mul g ~name:"cy" c y1 in
  let s =
    if sub then Sfg.Graph.sub g ~name:"s" xq cy
    else Sfg.Graph.add g ~name:"s" xq cy
  in
  let acc_dt = Fixpt.Dtype.make "acc" ~n:acc_bits ~f:2 () in
  let y = Sfg.Graph.quantize g ~name:"y" acc_dt s in
  Sfg.Graph.connect_delay g y1 y;
  Sfg.Graph.mark_output g "y" y;
  Sfg.Graph.validate_exn g;
  (g, in_dt)

let gen_section =
  QCheck2.Gen.(
    map
      (fun (fin, acc_bits, ci, sub) ->
        (fin, acc_bits, [| 0.5; 0.75; 1.25; 1.5 |].(ci), sub))
      (tup4 (int_range 0 1) (int_range 3 6) (int_range 0 3) bool))

let verify_exhaustive prop g =
  Verify.Engine.verify ~max_bits:10 ~depth:64 ~max_states:100_000 prop g

(* Exhaustive no-overflow verdicts agree with brute force over all
   length-4 input sequences. *)
let prop_no_overflow_agrees =
  QCheck2.Test.make ~name:"verify no-overflow agrees with brute force"
    ~count:60 gen_section (fun (fin, acc_bits, coef, sub) ->
      let g, in_dt = section1 ~fin ~acc_bits ~coef ~sub () in
      let r = verify_exhaustive Verify.Engine.No_overflow g in
      if not r.Verify.Engine.stats.Verify.Engine.exhaustive then
        QCheck2.Test.fail_report "alphabet not exhaustive";
      let alphabet = grid in_dt ~lo:(-1.0) ~hi:1.0 in
      let brute_safe =
        for_all_seqs alphabet ~len:4 ~prefix:[] (fun seq ->
            first_overflow g ~seq = None)
      in
      match r.Verify.Engine.verdict with
      | Verify.Engine.Proved -> brute_safe
      | Verify.Engine.Refuted ce ->
          (* a refutation may sit deeper than the brute-force horizon,
             but its own stimulus must reproduce in the interpreter *)
          let seq =
            match ce.Verify.Engine.stimulus with
            | [ (_, samples) ] -> samples
            | _ -> QCheck2.Test.fail_report "expected one input"
          in
          (match first_overflow g ~seq with
          | Some _ -> ()
          | None -> QCheck2.Test.fail_report "counterexample does not overflow");
          (match Verify.Engine.confirm g ce with
          | Ok () -> ()
          | Error e -> QCheck2.Test.fail_report ("confirm: " ^ e));
          true
      | Verify.Engine.Bounded_out why ->
          QCheck2.Test.fail_report ("exhaustive search bounded out: " ^ why))

(* Proved no-limit-cycle means the zero-input response from any short
   stimulus prefix decays to the all-zero register state. *)
let prop_limit_cycle_decays =
  QCheck2.Test.make ~name:"verify proved limit-cycle implies decay" ~count:40
    gen_section (fun (fin, acc_bits, coef, sub) ->
      let g, in_dt = section1 ~fin ~acc_bits ~coef ~sub () in
      let r = verify_exhaustive Verify.Engine.No_limit_cycle g in
      match r.Verify.Engine.verdict with
      | Verify.Engine.Proved ->
          let alphabet = grid in_dt ~lo:(-1.0) ~hi:1.0 in
          let tail = 64 in
          for_all_seqs alphabet ~len:3 ~prefix:[] (fun prefix ->
              let steps = Array.length prefix + tail in
              let seq =
                Array.init steps (fun i ->
                    if i < Array.length prefix then prefix.(i) else 0.0)
              in
              let traces =
                Sfg.Graph.simulate g ~steps ~inputs:(fun _ s -> seq.(s))
              in
              (* the register is the y1 delay: decayed means its last
                 sample is exactly zero *)
              let y1 = List.assoc "y1" traces in
              y1.(steps - 1) = 0.0)
      | Verify.Engine.Refuted ce -> (
          match Verify.Engine.confirm g ce with
          | Ok () -> true
          | Error e -> QCheck2.Test.fail_report ("confirm: " ^ e))
      | Verify.Engine.Bounded_out why ->
          QCheck2.Test.fail_report ("exhaustive search bounded out: " ^ why))

(* --- pinned regressions: the biquad pair -------------------------------- *)

let refute_under () =
  let g = Verify.Designs.biquad_under () in
  let r = verify_exhaustive Verify.Engine.No_overflow g in
  match r.Verify.Engine.verdict with
  | Verify.Engine.Refuted ce -> ce
  | _ -> Alcotest.fail "biquad-under: expected Refuted"

let test_biquad_under_refuted () =
  let ce = refute_under () in
  (match ce.Verify.Engine.violation with
  | Verify.Engine.Overflow { node; _ } ->
      check Alcotest.string "refuted node" "y" node
  | _ -> Alcotest.fail "expected an overflow violation");
  check bool_t "confirm" true
    (Verify.Engine.confirm (Verify.Designs.biquad_under ()) ce = Ok ())

(* The emitted counterexample must drive the sweep's own compiled
   candidate evaluator into a nonzero overflow count — the stimulus is
   an admissible sweep stimulus, not just an engine-internal artifact. *)
let test_counterexample_drives_eval () =
  let ce = refute_under () in
  let eval =
    {
      Refine.Eval.extract = (fun () -> Verify.Designs.biquad_under ());
      cycles = ce.Verify.Engine.steps;
      stimulus =
        (fun ~seed:_ name step ->
          (List.assoc name ce.Verify.Engine.stimulus).(step));
    }
  in
  let env = Sim.Env.create () in
  let design =
    { Refine.Flow.env; reset = (fun () -> ()); run = (fun () -> ()) }
  in
  let m = Refine.Eval.evaluate_compiled ~seed:0 eval design in
  check bool_t "counterexample overflows in Eval" true
    (m.Refine.Eval.overflow_count > 0)

let test_biquad_repaired_proved () =
  let g = Verify.Designs.biquad_repaired () in
  let r = verify_exhaustive Verify.Engine.No_overflow g in
  check bool_t "proved" true (r.Verify.Engine.verdict = Verify.Engine.Proved);
  check bool_t "exhaustive" true r.Verify.Engine.stats.Verify.Engine.exhaustive;
  (* the very stimulus that kills the 5-bit accumulator is harmless on
     the 6-bit one *)
  let ce = refute_under () in
  let seq = List.assoc "x" ce.Verify.Engine.stimulus in
  check bool_t "repair absorbs the counterexample" true
    (first_overflow g ~seq = None)

(* --- counterexample serialization --------------------------------------- *)

let test_stim_roundtrip () =
  let ce = refute_under () in
  let text = Verify.Stim.to_string ~property:Verify.Engine.No_overflow ce in
  match Verify.Stim.of_string text with
  | Error e -> Alcotest.fail e
  | Ok (prop, ce') ->
      check bool_t "property" true (prop = Verify.Engine.No_overflow);
      check int_t "steps" ce.Verify.Engine.steps ce'.Verify.Engine.steps;
      check bool_t "violation" true
        (ce.Verify.Engine.violation = ce'.Verify.Engine.violation);
      List.iter2
        (fun (n, s) (n', s') ->
          check Alcotest.string "input name" n n';
          Array.iteri
            (fun i v ->
              if Int64.bits_of_float v <> Int64.bits_of_float s'.(i) then
                Alcotest.failf "sample %d: %h <> %h" i v s'.(i))
            s)
        ce.Verify.Engine.stimulus ce'.Verify.Engine.stimulus;
      check Alcotest.string "re-render byte-identical" text
        (Verify.Stim.to_string ~property:prop ce')

let test_stim_rejects_garbage () =
  check bool_t "empty" true (Result.is_error (Verify.Stim.of_string ""));
  check bool_t "bad header" true
    (Result.is_error (Verify.Stim.of_string "# nope\n"));
  let ce = refute_under () in
  let text = Verify.Stim.to_string ~property:Verify.Engine.No_overflow ce in
  (* truncating a sample row breaks the length invariant *)
  let broken =
    String.concat "\n"
      (List.map
         (fun line ->
           if String.length line > 8 && String.sub line 0 8 = "input x " then
             "input x 0x1p+0"
           else line)
         (String.split_on_char '\n' text))
  in
  check bool_t "length mismatch" true
    (Result.is_error (Verify.Stim.of_string broken))

let suite =
  ( "verify",
    [
      Alcotest.test_case "biquad-under refuted" `Quick test_biquad_under_refuted;
      Alcotest.test_case "counterexample drives Eval" `Quick
        test_counterexample_drives_eval;
      Alcotest.test_case "biquad-repaired proved" `Quick
        test_biquad_repaired_proved;
      Alcotest.test_case "stim round-trip" `Quick test_stim_roundtrip;
      Alcotest.test_case "stim rejects garbage" `Quick test_stim_rejects_garbage;
      Test_support.Qseed.to_alcotest prop_no_overflow_agrees;
      Test_support.Qseed.to_alcotest prop_limit_cycle_decays;
    ] )
