(* Conformance: the differential quantization oracle.

   Two layers: the batch driver (Oracle.Differential — ≥1000 cases per
   sign × overflow × round combination with forced wordlength
   boundaries) and an independent qcheck property that draws (dtype,
   value) pairs from its own generators and compares the implementation
   against the executable spec field by field. *)

open Fixrefine

let seed = Test_support.Qseed.seed

(* --- batch driver -------------------------------------------------------- *)

let test_batch () =
  let r = Oracle.Differential.run ~seed ~per_combo:1000 () in
  if not (Oracle.Differential.passed r) then
    Alcotest.failf "%a" Oracle.Differential.pp_report r;
  Alcotest.(check bool)
    "at least 1000 cases per combination" true
    (r.Oracle.Differential.total_cases
    >= 1000 * List.length Oracle.Differential.combos)

let test_batch_deterministic () =
  (* same seed, same report — the replay contract of the printed seed *)
  let a = Oracle.Differential.run ~seed ~per_combo:50 () in
  let b = Oracle.Differential.run ~seed ~per_combo:50 () in
  Alcotest.(check int)
    "same case count" a.Oracle.Differential.total_cases
    b.Oracle.Differential.total_cases;
  Alcotest.(check int)
    "same mismatch count" a.Oracle.Differential.mismatch_count
    b.Oracle.Differential.mismatch_count

(* --- independent qcheck property ----------------------------------------- *)

let gen_dtype =
  let open QCheck2.Gen in
  let* sign = oneofl [ Fixpt.Sign_mode.Tc; Fixpt.Sign_mode.Us ] in
  let* overflow =
    oneofl
      [
        Fixpt.Overflow_mode.Wrap;
        Fixpt.Overflow_mode.Saturate;
        Fixpt.Overflow_mode.Error;
      ]
  in
  let* round = oneofl [ Fixpt.Round_mode.Round; Fixpt.Round_mode.Floor ] in
  (* boundary wordlengths appear alongside ordinary ones; unsigned
     formats stop at 63 (no int64 code for unsigned 64) *)
  let* n = oneofl [ 1; 2; 3; 7; 8; 12; 16; 24; 32; 48; 61; 62; 63; 64 ] in
  let n = if sign = Fixpt.Sign_mode.Us then min n 63 else n in
  let* f = int_range (-8) (n + 8) in
  return (Fixpt.Dtype.make "gen" ~n ~f ~sign ~overflow ~round ())

let gen_value dt =
  let open QCheck2.Gen in
  let lo, hi = Fixpt.Dtype.range dt in
  let span = Float.max 1.0 (hi -. lo) in
  oneof
    [
      (* around the representable window, including overflow territory *)
      (let* u = float_range (-2.5) 2.5 in
       return (u *. span));
      (* exact grid points and half-step ties *)
      (let* k = int_range (-2000) 2000 in
       let* half = oneofl [ 0.0; 0.5 ] in
       return ((Float.of_int k +. half) *. Fixpt.Dtype.step dt));
      (* format boundaries *)
      oneofl [ lo; hi; 0.0; -0.0; lo -. Fixpt.Dtype.step dt; hi +. Fixpt.Dtype.step dt ];
      (* int64-exact window straddle and range-explosion magnitudes *)
      (let* m = float_range 1e17 1e20 in
       let* s = oneofl [ 1.0; -1.0 ] in
       return (s *. m *. Fixpt.Dtype.step dt));
      (let* e = int_range 18 34 in
       let* s = oneofl [ 1.0; -1.0 ] in
       return (s *. (10.0 ** Float.of_int e)));
      oneofl [ Float.infinity; Float.neg_infinity; Float.max_float ];
    ]

let gen_case =
  let open QCheck2.Gen in
  let* dt = gen_dtype in
  let* v = gen_value dt in
  return (dt, v)

let print_case (dt, v) =
  Printf.sprintf "%s <- %h" (Fixpt.Dtype.to_string dt) v

let outcome_repr (o : Fixpt.Quantize.outcome) =
  let ov =
    match o.Fixpt.Quantize.overflow with
    | None -> "none"
    | Some { Fixpt.Quantize.raw; direction } ->
        Printf.sprintf "%s raw=%h"
          (match direction with `Above -> "above" | `Below -> "below")
          raw
  in
  Printf.sprintf "value=%h rerr=%h overflow=%s" o.Fixpt.Quantize.value
    o.Fixpt.Quantize.rounding_error ov

let prop_impl_matches_spec =
  QCheck2.Test.make ~count:2000 ~name:"impl quantize = spec quantize"
    ~print:print_case gen_case (fun (dt, v) ->
      let impl = Fixpt.Quantize.quantize dt v in
      let spec = Oracle.Quantize_spec.quantize dt v in
      let ri = outcome_repr impl and rs = outcome_repr spec in
      if String.equal ri rs then true
      else QCheck2.Test.fail_reportf "impl %s@.spec %s" ri rs)

let prop_spec_cast_idempotent =
  QCheck2.Test.make ~count:1000 ~name:"spec cast idempotent"
    ~print:print_case gen_case (fun (dt, v) ->
      (* idempotence needs a float-exact code grid: beyond 53 bits the
         grid codes themselves round in double precision, and a wrap of
         an infinite scaled value yields NaN — both excluded *)
      if Fixpt.Dtype.n dt > 53 then true
      else
        let once = Oracle.Quantize_spec.cast dt v in
        let lo, hi = Fixpt.Dtype.range dt in
        if Float.is_finite once && once >= lo && once <= hi then
          Float.equal once (Oracle.Quantize_spec.cast dt once)
        else true)

(* --- spec edge cases ------------------------------------------------------ *)

let test_nan_raises () =
  let dt = Fixpt.Dtype.make "t" ~n:8 ~f:4 () in
  let raises f = try ignore (f ()) ; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "spec raises on NaN" true
    (raises (fun () -> Oracle.Quantize_spec.quantize dt Float.nan));
  Alcotest.(check bool) "impl raises on NaN" true
    (raises (fun () -> Fixpt.Quantize.quantize dt Float.nan))

let test_code_bounds_full_width () =
  let fmt64 = Fixpt.Qformat.make ~n:64 ~f:0 Fixpt.Sign_mode.Tc in
  let lo, hi = Oracle.Quantize_spec.code_bounds fmt64 in
  Alcotest.(check bool) "tc64 lo" true (Int64.equal lo Int64.min_int);
  Alcotest.(check bool) "tc64 hi" true (Int64.equal hi Int64.max_int);
  let lo', hi' = Fixpt.Quantize.code_bounds fmt64 in
  Alcotest.(check bool) "impl agrees" true
    (Int64.equal lo lo' && Int64.equal hi hi');
  let fmt_us64 = Fixpt.Qformat.make ~n:64 ~f:0 Fixpt.Sign_mode.Us in
  Alcotest.(check bool) "us64 raises" true
    (try
       ignore (Oracle.Quantize_spec.code_bounds fmt_us64);
       false
     with Invalid_argument _ -> true)

let test_wrap_code_agrees () =
  let fmt = Fixpt.Qformat.make ~n:5 ~f:0 Fixpt.Sign_mode.Tc in
  for c = -200 to 200 do
    let c64 = Int64.of_int c in
    Alcotest.(check bool)
      (Printf.sprintf "wrap %d" c)
      true
      (Int64.equal
         (Oracle.Quantize_spec.wrap_code fmt c64)
         (Fixpt.Quantize.wrap_code fmt c64))
  done

let suite =
  ( "conformance.differential",
    [
      Alcotest.test_case "batch: 1000 per combination" `Quick test_batch;
      Alcotest.test_case "batch: deterministic under seed" `Quick
        test_batch_deterministic;
      Alcotest.test_case "NaN raises (spec and impl)" `Quick test_nan_raises;
      Alcotest.test_case "code_bounds at full width" `Quick
        test_code_bounds_full_width;
      Alcotest.test_case "wrap_code spec = impl" `Quick test_wrap_code_agrees;
      Test_support.Qseed.to_alcotest prop_impl_matches_spec;
      Test_support.Qseed.to_alcotest prop_spec_cast_idempotent;
    ] )
