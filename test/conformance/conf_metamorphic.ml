(* Conformance: metamorphic invariants over the standard workloads.

   One alcotest case per workload so a failure names the design it broke
   on; the invariants themselves live in Oracle.Metamorphic. *)

open Fixrefine

let run_workload (w : Oracle.Workloads.t) () =
  let r = Oracle.Metamorphic.run_workload w in
  if not (Oracle.Metamorphic.passed r) then
    Alcotest.failf "%a" Oracle.Metamorphic.pp_report r;
  Alcotest.(check bool)
    (Printf.sprintf "%s: some invariants checked" w.Oracle.Workloads.name)
    true
    (r.Oracle.Metamorphic.checked > 0)

let test_all_workloads_covered () =
  let names =
    List.map (fun (w : Oracle.Workloads.t) -> w.Oracle.Workloads.name)
      Oracle.Workloads.all
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "workload %s registered" expected)
        true (List.mem expected names))
    [ "fir"; "lms"; "cordic"; "timing"; "ddc"; "sync" ]

let test_run_all_merges () =
  let r = Oracle.Metamorphic.run_all () in
  Alcotest.(check int) "six workloads" 6
    (List.length r.Oracle.Metamorphic.workloads);
  Alcotest.(check bool) "no failures" true (Oracle.Metamorphic.passed r)

let per_workload_cases =
  List.map
    (fun (w : Oracle.Workloads.t) ->
      Alcotest.test_case
        (Printf.sprintf "invariants: %s" w.Oracle.Workloads.name)
        `Quick (run_workload w))
    Oracle.Workloads.all

let suite =
  ( "conformance.metamorphic",
    Alcotest.test_case "all paper workloads registered" `Quick
      test_all_workloads_covered
    :: per_workload_cases
    @ [ Alcotest.test_case "run_all merges all six" `Quick test_run_all_merges ]
  )
