(* Conformance suite entry point: the differential quantization oracle,
   the metamorphic workload invariants, golden traces and the emitted
   VHDL.  Runs under `dune runtest` (tier 1) — the bench regression
   guard is deliberately *not* here (wall-clock measurements don't
   belong in a deterministic test suite); it runs inside
   `fxrefine check` (scripts/check.sh). *)

let () =
  Alcotest.run "conformance"
    [
      Conf_differential.suite;
      Conf_metamorphic.suite;
      Conf_golden.suite;
      Conf_vhdl.suite;
    ]
