(* Conformance: golden traces.

   The dune sandbox materializes test/conformance/golden/* next to the
   test binary (see the (deps) clause), so Oracle.Golden.default_dir
   resolves to ./golden here and the suite compares against exactly the
   committed files.  Regenerate after an intentional behaviour change
   with:  dune exec bin/fxrefine.exe -- check --update-golden  *)

open Fixrefine

(* one full generation pass shared by the comparison tests *)
let result = lazy (Oracle.Golden.check ())

let test_goldens_match () =
  let r = Lazy.force result in
  if not (Oracle.Golden.passed r) then
    Alcotest.failf
      "%a@.regenerate with: dune exec bin/fxrefine.exe -- check \
       --update-golden"
      Oracle.Golden.pp_result r

let test_trace_coverage () =
  (* at least the three refine-flow workloads carry both a trace and a
     refinement report *)
  let r = Lazy.force result in
  let files = List.map (fun e -> e.Oracle.Golden.file) r.Oracle.Golden.entries in
  List.iter
    (fun f ->
      Alcotest.(check bool) (Printf.sprintf "%s present" f) true
        (List.mem f files))
    [
      "fir.trace"; "fir.refine"; "lms.trace"; "lms.refine"; "timing.trace";
      "timing.refine"; "cordic.trace"; "ddc.trace";
    ]

let test_trace_deterministic () =
  (* two fresh builds of the same workload render byte-identical traces:
     the precondition for golden comparison to be meaningful at all *)
  List.iter
    (fun (w : Oracle.Workloads.t) ->
      let render () =
        let b = w.Oracle.Workloads.build () in
        b.Oracle.Workloads.run ();
        Oracle.Golden.trace_of_built b
      in
      Alcotest.(check string)
        (Printf.sprintf "%s trace deterministic" w.Oracle.Workloads.name)
        (render ()) (render ()))
    Oracle.Workloads.all

let test_missing_reported () =
  (* pointing at an empty directory must fail loudly, not silently pass *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fx_no_goldens" in
  let r = Oracle.Golden.check ~dir () in
  Alcotest.(check bool) "missing goldens fail the check" false
    (Oracle.Golden.passed r);
  Alcotest.(check bool) "every entry reported missing" true
    (List.for_all
       (fun e -> e.Oracle.Golden.outcome = Oracle.Golden.Missing)
       r.Oracle.Golden.entries)

let suite =
  ( "conformance.golden",
    [
      Alcotest.test_case "traces match committed goldens" `Quick
        test_goldens_match;
      Alcotest.test_case "expected files covered" `Quick test_trace_coverage;
      Alcotest.test_case "traces are deterministic" `Quick
        test_trace_deterministic;
      Alcotest.test_case "missing goldens are failures" `Quick
        test_missing_reported;
    ] )
