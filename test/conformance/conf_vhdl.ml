(* Conformance: emitted VHDL for the small FIR flowgraph.

   The byte-exact comparison against golden/fir_{wrap,sat,tb}.vhd is
   part of Oracle.Golden.check (conf_golden); here we pin down the
   structural properties those files must keep — so an intentional
   regeneration that silently drops saturation logic or the testbench
   assertions still fails a named test. *)

open Fixrefine

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let cases = lazy (Oracle.Golden.vhdl_cases ())
let case name = List.assoc name (Lazy.force cases)

let test_all_cases_present () =
  List.iter
    (fun f ->
      Alcotest.(check bool) (Printf.sprintf "%s generated" f) true
        (List.mem_assoc f (Lazy.force cases)))
    [ "fir_wrap.vhd"; "fir_sat.vhd"; "fir_tb.vhd" ]

let test_wrap_entity () =
  let text = case "fir_wrap.vhd" in
  Alcotest.(check bool) "entity" true (contains "entity fir_wrap is" text);
  Alcotest.(check bool) "numeric_std" true
    (contains "use ieee.numeric_std.all" text);
  Alcotest.(check bool) "input port" true (contains "i_x" text);
  Alcotest.(check bool) "output port" true (contains "o_y" text);
  Alcotest.(check bool) "registered delay line" true
    (contains "rising_edge" text);
  (* wrap mode: the accumulator chain resizes, it never saturates *)
  Alcotest.(check bool) "no sat() on v-chain" false
    (contains "s_v_1_ <= sat(" text || contains "s_v_2_ <= sat(" text)

let test_sat_entity () =
  let text = case "fir_sat.vhd" in
  Alcotest.(check bool) "entity" true (contains "entity fir_sat is" text);
  Alcotest.(check bool) "sat helper emitted" true (contains "function sat" text);
  (* saturate mode marks the whole accumulator chain *)
  Alcotest.(check bool) "sat() on v-chain" true (contains "<= sat(" text)

let test_wrap_sat_differ_only_in_msb_logic () =
  let wrap = case "fir_wrap.vhd" and sat = case "fir_sat.vhd" in
  Alcotest.(check bool) "texts differ" false (String.equal wrap sat);
  (* same interface either way *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in both") true
        (contains needle wrap && contains needle sat))
    [ "i_x : in "; "o_y : out "; "rising_edge(clk)" ]

let test_testbench_structure () =
  let text = case "fir_tb.vhd" in
  Alcotest.(check bool) "tb entity" true (contains "entity fir_dut_tb" text);
  Alcotest.(check bool) "instantiates dut" true
    (contains "entity work.fir_dut" text);
  Alcotest.(check bool) "stimulus rom" true (contains "constant stim_i_x" text);
  Alcotest.(check bool) "golden rom" true (contains "constant gold_o_y" text);
  Alcotest.(check bool) "self-checking assertion" true
    (contains "assert o_y = gold_o_y" text);
  Alcotest.(check bool) "16 vectors checked" true
    (contains "16 vectors checked" text)

let test_generation_deterministic () =
  let again = Oracle.Golden.vhdl_cases () in
  List.iter
    (fun (f, text) ->
      Alcotest.(check string)
        (Printf.sprintf "%s deterministic" f)
        text
        (List.assoc f again))
    (Lazy.force cases)

let suite =
  ( "conformance.vhdl",
    [
      Alcotest.test_case "all golden cases present" `Quick
        test_all_cases_present;
      Alcotest.test_case "wrap entity structure" `Quick test_wrap_entity;
      Alcotest.test_case "saturate entity structure" `Quick test_sat_entity;
      Alcotest.test_case "wrap vs saturate interface" `Quick
        test_wrap_sat_differ_only_in_msb_logic;
      Alcotest.test_case "testbench structure" `Quick test_testbench_structure;
      Alcotest.test_case "emission deterministic" `Quick
        test_generation_deterministic;
    ] )
