(* Deterministic seeding for every qcheck property in the test suite.

   All random tests draw from one seed so a failing run can be replayed
   exactly: the seed is printed once per process and can be overridden
   with FXREFINE_QCHECK_SEED.  The default is a fixed constant — test
   runs are reproducible by default, not merely reproducible after the
   fact. *)

let fixed_default = 421731

let seed =
  match Sys.getenv_opt "FXREFINE_QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf
            "warning: ignoring unparseable FXREFINE_QCHECK_SEED=%S\n%!" s;
          fixed_default)
  | None -> fixed_default

let announced = ref false

let announce () =
  if not !announced then begin
    announced := true;
    Printf.printf "qcheck seed %d (replay with FXREFINE_QCHECK_SEED=%d)\n%!"
      seed seed
  end

(* A fresh state per property keeps each test's draw sequence independent
   of suite ordering. *)
let rand () = Random.State.make [| seed |]

let to_alcotest test =
  announce ();
  QCheck_alcotest.to_alcotest ~rand:(rand ()) test
