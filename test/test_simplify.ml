(* Tests: Sfg.Simplify — semantics preservation and the individual
   passes. *)

open Fixrefine

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

let test_constant_folding () =
  let g = Sfg.Graph.create () in
  let a = Sfg.Graph.const g 2.0 in
  let b = Sfg.Graph.const g 3.0 in
  let s = Sfg.Graph.add g ~name:"s" a b in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let y = Sfg.Graph.mul g ~name:"y" x s in
  Sfg.Graph.mark_output g "y" y;
  let g', st = Sfg.Simplify.run g in
  check int_t "folded the sum" 1 st.Sfg.Simplify.folded;
  check bool_t "smaller" true (st.Sfg.Simplify.after < st.Sfg.Simplify.before);
  (* range analysis on the simplified graph is unchanged *)
  let r = Sfg.Range_analysis.run g' in
  check bool_t "y = [-5, 5]" true
    (Sfg.Range_analysis.range_of r "y" = Some (Interval.make (-5.0) 5.0))

let test_cse_merges_duplicates () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  (* two identical literals and two identical products *)
  let c1 = Sfg.Graph.const g ~name:"lit1" 0.5 in
  let c2 = Sfg.Graph.const g ~name:"lit2" 0.5 in
  let p1 = Sfg.Graph.mul g ~name:"p1" x c1 in
  let p2 = Sfg.Graph.mul g ~name:"p2" x c2 in
  let y = Sfg.Graph.add g ~name:"y" p1 p2 in
  Sfg.Graph.mark_output g "y" y;
  let _, st = Sfg.Simplify.run g in
  check bool_t "merged consts and products" true (st.Sfg.Simplify.merged >= 2)

let test_dead_elimination () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let _unused = Sfg.Graph.mul g ~name:"dead" x x in
  let y = Sfg.Graph.neg g ~name:"y" x in
  Sfg.Graph.mark_output g "y" y;
  let g', st = Sfg.Simplify.run g in
  check int_t "one dropped" 1 st.Sfg.Simplify.dropped;
  check bool_t "dead gone" true
    (List.for_all
       (fun (n : Sfg.Node.t) -> n.Sfg.Node.name <> "dead")
       (Sfg.Graph.nodes g'))

let test_keep_protects_names () =
  let g = Sfg.Graph.create () in
  let a = Sfg.Graph.const g 2.0 in
  let b = Sfg.Graph.const g 3.0 in
  let s = Sfg.Graph.add g ~name:"vital" a b in
  Sfg.Graph.mark_output g "vital" s;
  let g', st = Sfg.Simplify.run ~keep:(fun n -> n = "vital") g in
  check int_t "not folded" 0 st.Sfg.Simplify.folded;
  check bool_t "named node survives" true
    (List.exists
       (fun (n : Sfg.Node.t) -> n.Sfg.Node.name = "vital")
       (Sfg.Graph.nodes g'))

let test_select_not_folded () =
  let g = Sfg.Graph.create () in
  let cond = Sfg.Graph.const g 1.0 in
  let a = Sfg.Graph.const g 5.0 in
  let b = Sfg.Graph.const g (-7.0) in
  let y = Sfg.Graph.select g ~name:"y" cond a b in
  Sfg.Graph.mark_output g "y" y;
  let g', _ = Sfg.Simplify.run g in
  let r = Sfg.Range_analysis.run g' in
  (* the join of both branches must survive simplification *)
  match Sfg.Range_analysis.range_of r "y" with
  | Some iv ->
      check bool_t "both branches" true
        (Interval.mem 5.0 iv && Interval.mem (-7.0) iv)
  | None -> Alcotest.fail "y missing"

let test_delay_loop_preserved () =
  let g = Sfg.Graph.create () in
  let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
  let d = Sfg.Graph.delay g ~init:2.5 "acc" in
  let half = Sfg.Graph.const g 0.5 in
  let scaled = Sfg.Graph.mul g ~name:"scaled" d half in
  let sum = Sfg.Graph.add g ~name:"sum" scaled x in
  Sfg.Graph.connect_delay g d sum;
  Sfg.Graph.mark_output g "sum" sum;
  let g', _ = Sfg.Simplify.run g in
  check bool_t "valid" true (Result.is_ok (Sfg.Graph.validate g'));
  (* first sample sees the initial value through the loop *)
  let traces = Sfg.Graph.simulate g' ~steps:2 ~inputs:(fun _ _ -> 0.0) in
  let sum_t = List.assoc "sum" traces in
  check (float_t 1e-12) "init preserved" 1.25 sum_t.(0)

let test_equalizer_extraction_shrinks_and_preserves () =
  (* the real target: an extracted equalizer graph simplifies
     substantially and still analyzes identically *)
  let env = Sim.Env.create ~seed:11 () in
  let rng = Stats.Rng.create ~seed:7 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:300 () in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create "y" in
  let eq = Dsp.Lms_equalizer.create env ~input ~output () in
  Sim.Signal.range (Dsp.Lms_equalizer.x eq) (-1.5) 1.5;
  Sim.Signal.range (Dsp.Lms_equalizer.b eq) (-0.2) 0.2;
  Dsp.Lms_equalizer.run eq ~cycles:50;
  let g =
    Sim.Extract.graph env ~outputs:[ "y"; "w" ]
      ~step:(fun () -> Dsp.Lms_equalizer.step eq)
      ()
  in
  let keep n = List.mem n [ "w"; "y"; "v[3]"; "b" ] in
  let g', st = Sfg.Simplify.run ~keep g in
  (* this graph is already lean; simplification must never grow it *)
  check bool_t "no growth" true (st.Sfg.Simplify.after <= st.Sfg.Simplify.before);
  let r0 = Sfg.Range_analysis.run g in
  let r1 = Sfg.Range_analysis.run g' in
  List.iter
    (fun name ->
      match
        (Sfg.Range_analysis.range_of r0 name, Sfg.Range_analysis.range_of r1 name)
      with
      | Some a, Some b ->
          check (float_t 1e-9) (name ^ " lo") (Interval.lo a) (Interval.lo b);
          check (float_t 1e-9) (name ^ " hi") (Interval.hi a) (Interval.hi b)
      | _ -> Alcotest.fail ("missing " ^ name))
    [ "w"; "y"; "v[3]" ]

let prop_simplify_preserves_execution =
  QCheck2.Test.make ~name:"simplify preserves execution" ~count:60
    QCheck2.Gen.(pair (int_range 0 5000) (int_range 3 10))
    (fun (seed, size) ->
      (* random feed-forward graph with consts and one input *)
      let rng = Stats.Rng.create ~seed in
      let g = Sfg.Graph.create () in
      let x = Sfg.Graph.input g "x" ~lo:(-1.0) ~hi:1.0 in
      let ids = ref [ x ] in
      for i = 0 to size - 1 do
        let pick () = List.nth !ids (Stats.Rng.int rng (List.length !ids)) in
        let name = Printf.sprintf "n%d" i in
        let id =
          match Stats.Rng.int rng 6 with
          | 0 -> Sfg.Graph.const g ~name (Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0)
          | 1 -> Sfg.Graph.add g ~name (pick ()) (pick ())
          | 2 -> Sfg.Graph.sub g ~name (pick ()) (pick ())
          | 3 -> Sfg.Graph.mul g ~name (pick ()) (pick ())
          | 4 -> Sfg.Graph.delay_of g name (pick ())
          | _ -> Sfg.Graph.abs g ~name (pick ())
        in
        ids := id :: !ids
      done;
      let out_id = List.hd !ids in
      Sfg.Graph.mark_output g "out" out_id;
      let out_name = (Sfg.Graph.node g out_id).Sfg.Node.name in
      let g', _ = Sfg.Simplify.run ~keep:(fun n -> n = out_name) g in
      let stim = Stats.Rng.split rng in
      let samples = Array.init 20 (fun _ -> Stats.Rng.uniform stim ~lo:(-1.0) ~hi:1.0) in
      let run gg =
        let traces = Sfg.Graph.simulate gg ~steps:20 ~inputs:(fun _ i -> samples.(i)) in
        List.assoc out_name traces
      in
      run g = run g')

let suite =
  ( "simplify",
    [
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "cse" `Quick test_cse_merges_duplicates;
      Alcotest.test_case "dead elimination" `Quick test_dead_elimination;
      Alcotest.test_case "keep protects" `Quick test_keep_protects_names;
      Alcotest.test_case "select not folded" `Quick test_select_not_folded;
      Alcotest.test_case "delay loop preserved" `Quick
        test_delay_loop_preserved;
      Alcotest.test_case "extraction shrinks" `Quick
        test_equalizer_extraction_shrinks_and_preserves;
      Test_support.Qseed.to_alcotest prop_simplify_preserves_execution;
    ] )
