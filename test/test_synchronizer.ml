(* Unit tests: the M-PAM slicer, the raised-cosine singularity guard,
   channel-model bounds, the ML-TED, the derivative interpolator, the
   NCO strobe boundary, MER/EVM scoring, and the closed Synchronizer. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

(* --- Slicer.decide_pam --------------------------------------------------- *)

let prop_decide_pam_on_constellation =
  QCheck2.Test.make ~name:"decide_pam lands on the constellation" ~count:500
    QCheck2.Gen.(pair (oneofl [ 2; 4; 8 ]) (float_range (-2.0) 2.0))
    (fun (m, v) ->
      let d = Dsp.Slicer.decide_pam ~m v in
      let levels = Dsp.Pam.levels ~m in
      Array.exists (fun l -> Float.abs (l -. d) < 1e-12) levels)

let prop_decide_pam_idempotent =
  QCheck2.Test.make ~name:"decide_pam is idempotent" ~count:500
    QCheck2.Gen.(pair (oneofl [ 2; 4; 8 ]) (float_range (-2.0) 2.0))
    (fun (m, v) ->
      let d = Dsp.Slicer.decide_pam ~m v in
      Dsp.Slicer.decide_pam ~m d = d)

let test_decide_pam_matches_slice_for_m2 () =
  (* the binary slicer and the 2-PAM multi-level slicer agree everywhere,
     including at v = 0 (both round up) *)
  List.iter
    (fun v ->
      check (float_t 1e-12)
        (Printf.sprintf "v=%g" v)
        (Dsp.Pam.slice v)
        (Dsp.Slicer.decide_pam ~m:2 v))
    [ -1.5; -1.0; -0.3; -1e-9; 0.0; 1e-9; 0.3; 1.0; 1.5 ]

let test_decide_pam_clamps () =
  check (float_t 1e-12) "above" 1.0 (Dsp.Slicer.decide_pam ~m:4 5.0);
  check (float_t 1e-12) "below" (-1.0) (Dsp.Slicer.decide_pam ~m:4 (-5.0));
  (* inner 4-PAM levels survive the round trip *)
  check (float_t 1e-12) "inner" (1.0 /. 3.0)
    (Dsp.Slicer.decide_pam ~m:4 0.3)

(* --- Pam.raised_cosine ---------------------------------------------------- *)

let test_raised_cosine_basics () =
  let p = Dsp.Pam.raised_cosine ~beta:0.35 in
  check (float_t 1e-12) "p(0)=1" 1.0 (p 0.0);
  List.iter
    (fun k -> check (float_t 1e-9) (Printf.sprintf "p(%d)=0" k) 0.0
        (p (Float.of_int k)))
    [ -3; -2; -1; 1; 2; 3 ];
  check (float_t 1e-12) "even" (p 0.7) (p (-0.7))

let test_raised_cosine_singularity_value () =
  (* at t = 1/(2β) the removable singularity evaluates to the classic
     (π/4)·sinc(1/(2β)) limit *)
  let beta = 0.35 in
  let ts = 1.0 /. (2.0 *. beta) in
  let sinc x = sin (Float.pi *. x) /. (Float.pi *. x) in
  check (float_t 1e-12) "limit value"
    (Float.pi /. 4.0 *. sinc ts)
    (Dsp.Pam.raised_cosine ~beta ts)

let test_raised_cosine_continuous_across_guard () =
  (* the |u| < 1e-3 guard band must join the textbook form without a
     jump: adjacent samples straddling both boundaries stay close *)
  let beta = 0.35 in
  let ts = 1.0 /. (2.0 *. beta) in
  let p = Dsp.Pam.raised_cosine ~beta in
  let step = 1e-5 in
  let prev = ref (p (ts -. 2e-3)) in
  let t = ref (ts -. 2e-3 +. step) in
  while !t < ts +. 2e-3 do
    let v = p !t in
    if Float.abs (v -. !prev) > 1e-4 then
      Alcotest.failf "jump at t=%.8f: %g -> %g" !t !prev v;
    prev := v;
    t := !t +. step
  done

(* --- Channel_model bounds ------------------------------------------------- *)

let test_isi_awgn_zero_fill () =
  let rng = Stats.Rng.create ~seed:7 in
  let stimulus, _ = Dsp.Channel_model.isi_awgn ~rng ~n_symbols:16 () in
  (* out-of-support indices read 0.0 — negative indices used to raise *)
  check (float_t 0.0) "n=-1" 0.0 (stimulus (-1));
  check (float_t 0.0) "n=-100" 0.0 (stimulus (-100));
  check (float_t 0.0) "n=16" 0.0 (stimulus 16);
  check (float_t 0.0) "n=23" 0.0 (stimulus 23);
  check bool_t "in-support finite" true (Float.is_finite (stimulus 0));
  check (float_t 0.0) "repeated reads consistent" (stimulus 5) (stimulus 5)

let test_drifting_tau_zero_fill () =
  let rng = Stats.Rng.create ~seed:7 in
  let stimulus, _, n_samples =
    Dsp.Channel_model.drifting_tau_pam ~m:4 ~rng ~n_symbols:8 ()
  in
  check int_t "n_samples = n_symbols*sps" 16 n_samples;
  check (float_t 0.0) "n=-1" 0.0 (stimulus (-1));
  check (float_t 0.0) "past end" 0.0 (stimulus n_samples)

(* --- Pam.symbol_errors ----------------------------------------------------- *)

let test_symbol_errors_negative_lag () =
  let rng = Stats.Rng.create ~seed:21 in
  let sent = Dsp.Pam.symbols_m rng ~m:4 12 in
  (* receiver delayed by 2 symbols, mild soft noise on the decisions *)
  let decided =
    Array.init 12 (fun i ->
        if i < 2 then 0.0 else sent.(i - 2) +. 0.05)
  in
  let errors, counted =
    Dsp.Pam.symbol_errors ~lag:(-2) ~m:4 ~sent ~decided ()
  in
  (* i + lag >= 0 restricts the window to i = 2..11 *)
  check int_t "counted" 10 counted;
  check int_t "errors" 0 errors;
  check (float_t 1e-12) "best_ser finds the lag" 0.0
    (Dsp.Pam.best_ser ~skip:2 ~m:4 ~sent ~decided ())

let test_symbol_errors_needs_constellation () =
  (* regression: re-slicing a 4-PAM stream with the hard ±1 slicer
     counted every inner level as an error *)
  let rng = Stats.Rng.create ~seed:22 in
  let sent = Dsp.Pam.symbols_m rng ~m:4 64 in
  let ser4 = Dsp.Pam.best_ser ~m:4 ~sent ~decided:sent () in
  let ser2 = Dsp.Pam.best_ser ~m:2 ~sent ~decided:sent () in
  check (float_t 1e-12) "m=4: perfect" 0.0 ser4;
  check bool_t "m=2 mis-slices inner levels" true (ser2 > 0.3)

(* --- Nco strobe boundary --------------------------------------------------- *)

let test_nco_exact_zero_phase_is_not_a_strobe () =
  (* with lferr = 0 and sps = 2 the phase alternates 0.0, 0.5: every
     second step computes eta_next = 0.0 exactly, which must NOT strobe
     (strict < 0), in both the sim and the reference *)
  let env = Sim.Env.create () in
  let nco = Dsp.Nco.create env ~sps:2 () in
  let expected = Dsp.Nco.reference ~sps:2 (Array.make 6 0.0) in
  Array.iteri
    (fun i (es, em) ->
      let strobed, mu = Dsp.Nco.step nco (cst 0.0) in
      check bool_t (Printf.sprintf "strobe %d" i) es strobed;
      check bool_t (Printf.sprintf "alternating %d" i) (i mod 2 = 0) strobed;
      check (float_t 1e-12) (Printf.sprintf "mu %d" i) em (Sim.Value.fx mu);
      if not strobed then
        check (float_t 0.0) "eta_next is exactly 0.0" 0.0
          (Sim.Signal.peek_fx (Dsp.Nco.next_phase nco));
      Sim.Env.tick env)
    expected

let test_nco_boundary_crossing_sequence () =
  (* craft a control sequence that lands the phase exactly on 0.0 after
     a clamped step and verify sim == reference on strobes and mu *)
  let lferrs = [| 0.25; -0.25; -0.25; 0.0; 0.1; -0.1 |] in
  let env = Sim.Env.create () in
  let nco = Dsp.Nco.create env ~sps:2 () in
  let expected = Dsp.Nco.reference ~sps:2 lferrs in
  Array.iteri
    (fun i lferr ->
      let strobed, mu = Dsp.Nco.step nco (cst lferr) in
      let es, em = expected.(i) in
      check bool_t (Printf.sprintf "strobe %d" i) es strobed;
      check (float_t 1e-12) (Printf.sprintf "mu %d" i) em (Sim.Value.fx mu);
      Sim.Env.tick env)
    lferrs

(* --- Interpolator at the mu extremes --------------------------------------- *)

let interp_at mu =
  let env = Sim.Env.create () in
  let ip = Dsp.Interpolator.create env () in
  List.iter
    (fun v ->
      Dsp.Interpolator.shift ip (cst v);
      Sim.Env.tick env)
    [ 1.0; -2.0; 3.0; -4.0 ];
  let out = Dsp.Interpolator.interpolate ip (cst mu) in
  (Sim.Value.fx out, Dsp.Interpolator.reference [| -4.0; 3.0; -2.0; 1.0 |] mu)

let test_interpolator_mu_extremes () =
  List.iter
    (fun mu ->
      let got, want = interp_at mu in
      check (float_t 1e-9) (Printf.sprintf "mu=%.17g" mu) want got)
    [ 0.0; 0.5; Float.pred 1.0 ];
  (* the endpoints reproduce the bracketing taps *)
  let got0, _ = interp_at 0.0 in
  check (float_t 1e-12) "mu=0 is x[2]" (-2.0) got0;
  let got1, _ = interp_at (Float.pred 1.0) in
  check (float_t 1e-6) "mu->1 approaches x[1]" 3.0 got1

let test_interpolator_derivative () =
  (* the cubic interpolant of f(t) = t^3 - t has exact mu-derivative
     3mu^2 - 1; check the float reference and the simulated chain *)
  let f t = (t ** 3.0) -. t in
  let fd t = (3.0 *. t *. t) -. 1.0 in
  let x = [| f 2.0; f 1.0; f 0.0; f (-1.0) |] in
  List.iter
    (fun mu ->
      check (float_t 1e-9)
        (Printf.sprintf "d/dmu at %g" mu)
        (fd mu)
        (Dsp.Interpolator.derivative_reference x mu))
    [ 0.0; 0.3; 0.5; Float.pred 1.0 ];
  let env = Sim.Env.create () in
  let ip = Dsp.Interpolator.create env ~deriv:true () in
  List.iter
    (fun v ->
      Dsp.Interpolator.shift ip (cst v);
      Sim.Env.tick env)
    [ f (-1.0); f 0.0; f 1.0; f 2.0 ];
  ignore (Dsp.Interpolator.interpolate ip (cst 0.3));
  let d = Dsp.Interpolator.differentiate ip (cst 0.3) in
  check (float_t 1e-9) "sim derivative" (fd 0.3) (Sim.Value.fx d)

let test_interpolator_deriv_signal_count () =
  let env = Sim.Env.create () in
  let ip = Dsp.Interpolator.create env ~deriv:true () in
  (* 12 of the plain Farrow chain + dh[0..1] + dout *)
  check int_t "15 signals" 15 (List.length (Dsp.Interpolator.signals ip))

(* --- Ml_ted ----------------------------------------------------------------- *)

let test_mlted_s_curve_sign () =
  (* sample a lone raised-cosine pulse late (delta > 0, past the peak):
     y' < 0 and the decision is positive, so err = -a·y' must be
     positive (larger W -> earlier strobe), matching the decrementing
     NCO; early sampling gives the opposite sign *)
  let rc = Dsp.Pam.raised_cosine ~beta:0.35 in
  let rc' t = (rc (t +. 1e-6) -. rc (t -. 1e-6)) /. 2e-6 in
  let err ~m ~scale d =
    Dsp.Ml_ted.reference ~m ~y:(scale *. rc d) ~ydot:(scale *. rc' d)
  in
  check bool_t "m=2 late -> positive" true (err ~m:2 ~scale:1.0 0.1 > 0.0);
  check bool_t "m=2 early -> negative" true (err ~m:2 ~scale:1.0 (-0.1) < 0.0);
  (* inner 4-PAM level: decision magnitude 1/3, same sign structure *)
  let s = 1.0 /. 3.0 in
  check bool_t "m=4 late -> positive" true (err ~m:4 ~scale:s 0.1 > 0.0);
  check bool_t "m=4 early -> negative" true (err ~m:4 ~scale:s (-0.1) < 0.0);
  (* Gardner agrees on the sign convention: a late strobe on a +1/-1
     transition samples the mid point past the zero crossing (mid < 0)
     and also produces a positive error *)
  let g_late =
    Dsp.Gardner_ted.reference ~current:(-1.0) ~previous:1.0 ~mid:(-0.2)
  in
  check bool_t "gardner late -> positive too" true
    (g_late > 0.0 && err ~m:2 ~scale:1.0 0.1 > 0.0)

let test_mlted_detect_sim () =
  let env = Sim.Env.create () in
  let ted = Dsp.Ml_ted.create env ~m:4 () in
  let e = Dsp.Ml_ted.detect ted ~y:(cst 0.35) ~ydot:(cst (-0.4)) in
  (* decision slices 0.35 to the inner level 1/3 *)
  check (float_t 1e-12) "decision" (1.0 /. 3.0)
    (Sim.Signal.peek_fx (Dsp.Ml_ted.decision ted));
  check (float_t 1e-12) "err = -a*ydot"
    (Dsp.Ml_ted.reference ~m:4 ~y:0.35 ~ydot:(-0.4))
    (Sim.Value.fx e)

(* --- Stats.Mer --------------------------------------------------------------- *)

let test_mer_db_and_evm () =
  let m = Stats.Mer.create () in
  Array.iter2
    (fun r a -> Stats.Mer.add m ~reference:r ~actual:a)
    [| 1.0; 1.0; 1.0; 1.0 |]
    [| 1.1; 0.9; 1.1; 0.9 |];
  check (float_t 1e-9) "20 dB" 20.0 (Stats.Mer.db m);
  check (float_t 1e-9) "EVM 10%" 0.1 (Stats.Mer.evm_rms m);
  (* non-finite pairs are skipped, not accumulated *)
  Stats.Mer.add m ~reference:Float.nan ~actual:1.0;
  Stats.Mer.add m ~reference:1.0 ~actual:Float.infinity;
  check int_t "count unchanged" 4 (Stats.Mer.count m);
  Stats.Mer.reset m;
  check int_t "reset" 0 (Stats.Mer.count m)

let test_mer_of_arrays_perfect () =
  let r = [| 1.0; -1.0; 0.5 |] in
  check bool_t "error-free is +inf" true
    (Stats.Mer.of_arrays ~reference:r ~actual:(Array.copy r) = Float.infinity)

(* --- Synchronizer: the closed loop ------------------------------------------ *)

let run_sync ?(ted = Dsp.Synchronizer.Ml) ?(m = 4) ?(sps = 2)
    ?(n_symbols = 600) () =
  let env = Sim.Env.create ~seed:17 () in
  let rng = Stats.Rng.create ~seed:463 in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.drifting_tau_pam ~sps ~m ~tau0:0.3 ~tau_drift:1e-4
      ~phase:0.05 ~noise_sigma:0.01 ~rng ~n_symbols ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "sym" in
  let decisions = Sim.Channel.create ~record:true "dec" in
  let sy =
    Dsp.Synchronizer.create env ~ted ~m ~sps ~input ~output ~decisions ()
  in
  Dsp.Synchronizer.run sy ~samples:n_samples;
  (sy, sent, output, decisions)

let check_sync_locks ~label ?ted ?m ?sps ?n_symbols () =
  let sy, sent, output, decisions = run_sync ?ted ?m ?sps ?n_symbols () in
  let n = Array.length sent in
  let skip = n / 2 in
  check bool_t (label ^ ": strobe rate within 1%") true
    (Dsp.Synchronizer.strobe_rate_error sy <= 0.01);
  let received = Array.of_list (Sim.Channel.recorded output) in
  let mer_db, _ = Dsp.Pam.best_mer ~skip ~sent ~received () in
  if mer_db < 15.0 then
    Alcotest.failf "%s: MER %.2f dB below the 15 dB lock threshold" label
      mer_db;
  let decided = Array.of_list (Sim.Channel.recorded decisions) in
  let m = Dsp.Synchronizer.constellation sy in
  check (float_t 0.02) (label ^ ": SER after lock") 0.0
    (Dsp.Pam.best_ser ~skip ~m ~sent ~decided ())

let test_sync_ml_pam4_locks () =
  check_sync_locks ~label:"ml/pam4/sps2" ~ted:Dsp.Synchronizer.Ml ~m:4 ()

let test_sync_gardner_pam2_locks () =
  check_sync_locks ~label:"gardner/pam2/sps2" ~ted:Dsp.Synchronizer.Gardner
    ~m:2 ()

let test_sync_ml_sps4_locks () =
  check_sync_locks ~label:"ml/pam2/sps4" ~ted:Dsp.Synchronizer.Ml ~m:2 ~sps:4
    ~n_symbols:400 ()

let test_sync_quantized_input_still_locks () =
  (* the fixed-point track steers (§4.2): a 10/8-bit saturating input
     dtype must not break acquisition *)
  let env = Sim.Env.create ~seed:17 () in
  let rng = Stats.Rng.create ~seed:463 in
  let stimulus, sent, n_samples =
    Dsp.Channel_model.drifting_tau_pam ~m:4 ~tau0:0.3 ~tau_drift:1e-4
      ~phase:0.05 ~noise_sigma:0.01 ~rng ~n_symbols:600 ()
  in
  let input = Sim.Channel.of_fun "rx" stimulus in
  let output = Sim.Channel.create ~record:true "sym" in
  let x_dtype =
    Fixpt.Dtype.make "T_input" ~n:10 ~f:8 ~overflow:Fixpt.Overflow_mode.Saturate ()
  in
  let sy =
    Dsp.Synchronizer.create env ~ted:Dsp.Synchronizer.Ml ~m:4 ~x_dtype ~input
      ~output ()
  in
  Dsp.Synchronizer.run sy ~samples:n_samples;
  check bool_t "strobe rate within 1%" true
    (Dsp.Synchronizer.strobe_rate_error sy <= 0.01);
  let received = Array.of_list (Sim.Channel.recorded output) in
  let mer_db, _ = Dsp.Pam.best_mer ~skip:300 ~sent ~received () in
  check bool_t "MER above 15 dB" true (mer_db >= 15.0)

let suite =
  ( "synchronizer",
    [
      Test_support.Qseed.to_alcotest prop_decide_pam_on_constellation;
      Test_support.Qseed.to_alcotest prop_decide_pam_idempotent;
      Alcotest.test_case "decide_pam m=2 = slice" `Quick
        test_decide_pam_matches_slice_for_m2;
      Alcotest.test_case "decide_pam clamps" `Quick test_decide_pam_clamps;
      Alcotest.test_case "raised cosine basics" `Quick
        test_raised_cosine_basics;
      Alcotest.test_case "raised cosine singularity value" `Quick
        test_raised_cosine_singularity_value;
      Alcotest.test_case "raised cosine guard continuity" `Quick
        test_raised_cosine_continuous_across_guard;
      Alcotest.test_case "isi_awgn zero fill" `Quick test_isi_awgn_zero_fill;
      Alcotest.test_case "drifting tau zero fill" `Quick
        test_drifting_tau_zero_fill;
      Alcotest.test_case "symbol errors negative lag" `Quick
        test_symbol_errors_negative_lag;
      Alcotest.test_case "symbol errors need constellation" `Quick
        test_symbol_errors_needs_constellation;
      Alcotest.test_case "nco exact-zero phase no strobe" `Quick
        test_nco_exact_zero_phase_is_not_a_strobe;
      Alcotest.test_case "nco boundary sequence" `Quick
        test_nco_boundary_crossing_sequence;
      Alcotest.test_case "interp mu extremes" `Quick
        test_interpolator_mu_extremes;
      Alcotest.test_case "interp derivative" `Quick
        test_interpolator_derivative;
      Alcotest.test_case "interp deriv signal count" `Quick
        test_interpolator_deriv_signal_count;
      Alcotest.test_case "ml-ted s-curve sign" `Quick test_mlted_s_curve_sign;
      Alcotest.test_case "ml-ted detect sim" `Quick test_mlted_detect_sim;
      Alcotest.test_case "mer db and evm" `Quick test_mer_db_and_evm;
      Alcotest.test_case "mer perfect" `Quick test_mer_of_arrays_perfect;
      Alcotest.test_case "sync ml pam4 locks" `Quick test_sync_ml_pam4_locks;
      Alcotest.test_case "sync gardner pam2 locks" `Quick
        test_sync_gardner_pam2_locks;
      Alcotest.test_case "sync ml sps4 locks" `Quick test_sync_ml_sps4_locks;
      Alcotest.test_case "sync quantized input locks" `Quick
        test_sync_quantized_input_still_locks;
    ] )
