(* Property tests: commutative monitor merging — the algebra the
   parallel sweep's determinism rests on.

   A stream split at a random point and accumulated in two halves must
   merge to the same statistics as single-stream accumulation (within
   float round-off for the Welford moments, exactly for the order-free
   aggregates), and merge must commute. *)

open Fixrefine.Stats

let check = Alcotest.check
let bool_t = Alcotest.bool

(* Relative comparison: Chan's merge reassociates the Welford update,
   so mean/variance agree to round-off, not bit-exactly. *)
let close ?(rtol = 1e-12) a b =
  a = b
  || Float.abs (a -. b) <= rtol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let feed samples =
  let r = Running.create () in
  List.iter (Running.add r) samples;
  r

let split_at k l =
  List.filteri (fun i _ -> i < k) l, List.filteri (fun i _ -> i >= k) l

let gen_samples =
  QCheck2.Gen.(
    list_size (int_range 1 200) (float_range (-1000.0) 1000.0))

let gen_split =
  QCheck2.Gen.(pair gen_samples (int_range 0 200))

(* --- Running.merge vs single-stream ------------------------------------ *)

let prop_running_split_merge =
  QCheck2.Test.make
    ~name:"Running: split-stream merge equals single stream" ~count:500
    gen_split
    (fun (samples, k) ->
      let k = k mod (List.length samples + 1) in
      let left, right = split_at k samples in
      let whole = feed samples in
      let merged = Running.merge (feed left) (feed right) in
      Running.count merged = Running.count whole
      && close (Running.mean merged) (Running.mean whole)
      && close (Running.variance merged) (Running.variance whole)
      (* order-free aggregates must be exact *)
      && Running.min_value merged = Running.min_value whole
      && Running.max_value merged = Running.max_value whole
      && Running.max_abs merged = Running.max_abs whole)

let prop_running_merge_commutes =
  QCheck2.Test.make ~name:"Running: merge commutes" ~count:500
    (QCheck2.Gen.pair gen_samples gen_samples)
    (fun (xs, ys) ->
      let a = feed xs and b = feed ys in
      let ab = Running.merge a b and ba = Running.merge b a in
      Running.count ab = Running.count ba
      && close (Running.mean ab) (Running.mean ba)
      && close (Running.variance ab) (Running.variance ba)
      && Running.min_value ab = Running.min_value ba
      && Running.max_value ab = Running.max_value ba)

let test_running_merge_empty () =
  let e = Running.create () in
  let r = feed [ 1.0; 2.0; 3.0 ] in
  let m = Running.merge e r in
  check bool_t "empty is identity (count)" true
    (Running.count m = Running.count r);
  check bool_t "empty is identity (mean)" true
    (Running.mean m = Running.mean r);
  check bool_t "both empty stays empty" true
    (Running.is_empty (Running.merge e (Running.create ())))

(* --- Err_stats.merge vs single-stream ---------------------------------- *)

let feed_err pairs =
  let e = Err_stats.create () in
  List.iter (fun (c, p) -> Err_stats.record e ~consumed:c ~produced:p) pairs;
  e

let gen_err_split =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 200)
         (pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))
      (int_range 0 200))

let prop_err_split_merge =
  QCheck2.Test.make
    ~name:"Err_stats: split-stream merge equals single stream" ~count:500
    gen_err_split
    (fun (pairs, k) ->
      let k = k mod (List.length pairs + 1) in
      let left, right = split_at k pairs in
      let whole = feed_err pairs in
      let merged = Err_stats.merge (feed_err left) (feed_err right) in
      let agree side =
        let a = side merged and b = side whole in
        Running.count a = Running.count b
        && close (Running.mean a) (Running.mean b)
        && close (Running.variance a) (Running.variance b)
        && Running.max_abs a = Running.max_abs b
      in
      Err_stats.count merged = Err_stats.count whole
      && agree Err_stats.consumed && agree Err_stats.produced)

let test_err_copy_independent () =
  let e = feed_err [ (0.1, 0.2); (0.3, 0.4) ] in
  let c = Err_stats.copy e in
  Err_stats.record e ~consumed:9.0 ~produced:9.0;
  check bool_t "copy unaffected by later records" true
    (Err_stats.count c = 2 && Err_stats.count e = 3)

let suite =
  ( "merge",
    [
      Test_support.Qseed.to_alcotest prop_running_split_merge;
      Test_support.Qseed.to_alcotest prop_running_merge_commutes;
      Alcotest.test_case "running merge empty" `Quick test_running_merge_empty;
      Test_support.Qseed.to_alcotest prop_err_split_merge;
      Alcotest.test_case "err_stats copy independent" `Quick
        test_err_copy_independent;
    ] )
