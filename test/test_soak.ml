(* Randomized soak tests: generate random small dataflow designs and
   check the whole-pipeline invariants on each —
   - every signal's observed fixed value stays inside its propagated
     range when the propagation stayed bounded;
   - the auto-extracted analytical graph's ranges also cover execution;
   - the full refinement flow terminates and produces representable,
     consistent types.
   Plus Dtype.of_string parser tests. *)

open Fixrefine
open Sim.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool

(* random straight-line design: signals s0..s_{k-1}; each computed from
   earlier ones (or the input) with a random op; a few are registers.
   Returns (env, step, names). *)
let build_design ~seed ~size =
  let rng = Stats.Rng.create ~seed in
  let env = Sim.Env.create ~seed:(seed + 1) () in
  let x = Sim.Signal.create env "x" in
  Sim.Signal.range x (-1.0) 1.0;
  let sigs = ref [| x |] in
  let specs = ref [] in
  for i = 0 to size - 1 do
    let name = Printf.sprintf "s%d" i in
    let registered = Stats.Rng.int rng 4 = 0 in
    let s =
      if registered then Sim.Signal.create_reg env name
      else Sim.Signal.create env name
    in
    (* keep feedback benign: registers always damp (x0.5 + input) *)
    let pick () = Stats.Rng.int rng (Array.length !sigs) in
    let op = Stats.Rng.int rng 5 in
    let a = pick () and b = pick () in
    let k = Stats.Rng.uniform rng ~lo:(-0.9) ~hi:0.9 in
    specs := (s, registered, op, a, b, k) :: !specs;
    sigs := Array.append !sigs [| s |]
  done;
  let sigs = !sigs in
  let specs = List.rev !specs in
  let stim = Stats.Rng.split rng in
  let step () =
    x <-- Sim.Value.of_float (Stats.Rng.uniform stim ~lo:(-1.0) ~hi:1.0);
    List.iter
      (fun (s, registered, op, a, b, k) ->
        let va = !!(sigs.(a)) and vb = !!(sigs.(b)) in
        let v =
          if registered then (!!s *: cst 0.5) +: (va *: cst 0.25)
          else
            match op with
            | 0 -> va +: vb
            | 1 -> va -: vb
            | 2 -> va *: vb
            | 3 -> (va *: cst k) +: cst k
            | _ -> min_ va (abs vb)
        in
        s <-- v)
      specs
  in
  (env, step, Array.to_list (Array.map Sim.Signal.name sigs))

let observed_within_prop env =
  List.for_all
    (fun s ->
      match (Sim.Signal.stat_range s, Sim.Signal.prop_range s) with
      | Some (slo, shi), Some (plo, phi) ->
          (* tolerance: the stat monitor records pre-quantization values
             exactly; prop is a superset by construction *)
          slo >= plo -. 1e-9 && shi <= phi +. 1e-9
      | _, None -> false
      | None, _ -> true)
    (Sim.Env.signals env)

let prop_sim_ranges_sound =
  QCheck2.Test.make ~name:"random designs: fx within propagated ranges"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 3 12))
    (fun (seed, size) ->
      let env, step, _ = build_design ~seed ~size in
      Sim.Engine.run env ~cycles:150 (fun _ -> step ());
      observed_within_prop env)

let prop_extracted_graph_sound =
  QCheck2.Test.make ~name:"random designs: extracted analytical ranges cover"
    ~count:25
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 3 10))
    (fun (seed, size) ->
      let env, step, names = build_design ~seed ~size in
      Sim.Engine.run env ~cycles:60 (fun _ -> step ());
      let _, ranges = Sim.Extract.analyze env ~step () in
      (* keep observing after extraction; analytical ranges must cover *)
      Sim.Engine.run env ~cycles:60 (fun _ -> step ());
      List.for_all
        (fun name ->
          match
            ( Sim.Signal.stat_range (Sim.Env.find_exn env name),
              Sfg.Range_analysis.range_of ranges name )
          with
          | Some (lo, hi), Some iv ->
              Interval.is_empty iv
              || (Interval.lo iv <= lo +. 1e-9 && Interval.hi iv >= hi -. 1e-9)
          | _, None -> true (* never driven during the recorded cycle *)
          | None, _ -> true)
        names)

let prop_flow_terminates_and_types =
  QCheck2.Test.make ~name:"random designs: flow terminates with sane types"
    ~count:15
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 3 8))
    (fun (seed, size) ->
      let env, step, _ = build_design ~seed ~size in
      let design =
        {
          Refine.Flow.env;
          reset = (fun () -> Sim.Env.reset env);
          run = (fun () -> Sim.Engine.run env ~cycles:400 (fun _ -> step ()));
        }
      in
      let r = Refine.Flow.refine design in
      List.for_all
        (fun (_, dt) ->
          Fixpt.Dtype.n dt >= 1 && Fixpt.Dtype.n dt <= 80
          && Fixpt.Dtype.msb_pos dt >= Fixpt.Dtype.lsb_pos dt)
        r.Refine.Flow.types)

(* --- Dtype.of_string ------------------------------------------------------ *)

let test_dtype_parse_roundtrip () =
  List.iter
    (fun dt ->
      match Fixpt.Dtype.of_string (Fixpt.Dtype.to_string dt) with
      | Some dt' ->
          check bool_t
            (Fixpt.Dtype.to_string dt ^ " roundtrips")
            true
            (Fixpt.Dtype.equal dt dt')
      | None -> Alcotest.fail "parse failed")
    [
      Fixpt.Dtype.make "T" ~n:7 ~f:5 ();
      Fixpt.Dtype.make "acc" ~n:16 ~f:12 ~sign:Fixpt.Sign_mode.Us
        ~overflow:Fixpt.Overflow_mode.Saturate ~round:Fixpt.Round_mode.Floor ();
    ]

let test_dtype_parse_defaults () =
  match Fixpt.Dtype.of_string "<8,6>" with
  | Some dt ->
      check bool_t "defaults" true
        (Fixpt.Dtype.n dt = 8
        && Fixpt.Dtype.f dt = 6
        && Fixpt.Dtype.sign dt = Fixpt.Sign_mode.Tc
        && Fixpt.Dtype.overflow dt = Fixpt.Overflow_mode.Wrap)
  | None -> Alcotest.fail "parse failed"

let test_dtype_parse_partial_modes () =
  match Fixpt.Dtype.of_string "acc<10,8,tc,sat>" with
  | Some dt ->
      check bool_t "sat parsed" true
        (Fixpt.Dtype.overflow dt = Fixpt.Overflow_mode.Saturate);
      check Alcotest.string "name" "acc" (Fixpt.Dtype.name dt)
  | None -> Alcotest.fail "parse failed"

let test_dtype_parse_garbage () =
  List.iter
    (fun s ->
      check bool_t (s ^ " rejected") true (Fixpt.Dtype.of_string s = None))
    [ ""; "<>"; "<8>"; "<8,6,xx>"; "<a,b>"; "noangle"; "<8,6"; "<0,0>";
      "<8,6,tc,sat,rd,extra>" ]

let suite =
  ( "soak",
    [
      Test_support.Qseed.to_alcotest prop_sim_ranges_sound;
      Test_support.Qseed.to_alcotest prop_extracted_graph_sound;
      Test_support.Qseed.to_alcotest prop_flow_terminates_and_types;
      Alcotest.test_case "dtype parse roundtrip" `Quick
        test_dtype_parse_roundtrip;
      Alcotest.test_case "dtype parse defaults" `Quick
        test_dtype_parse_defaults;
      Alcotest.test_case "dtype parse partial" `Quick
        test_dtype_parse_partial_modes;
      Alcotest.test_case "dtype parse garbage" `Quick test_dtype_parse_garbage;
    ] )
