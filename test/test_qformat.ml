(* Unit + property tests: Qformat — the positional bookkeeping every
   other module relies on. *)

open Fixrefine.Fixpt

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-12

let fmt_7_5 = Qformat.make ~n:7 ~f:5 Sign_mode.Tc

let test_positions () =
  (* the paper's <7,5,tc>: msb = n - f - 1 = 1, lsb = -5 *)
  check int_t "msb" 1 (Qformat.msb_pos fmt_7_5);
  check int_t "lsb" (-5) (Qformat.lsb_pos fmt_7_5);
  check float_t "step" 0.03125 (Qformat.step fmt_7_5)

let test_range_tc () =
  check float_t "min" (-2.0) (Qformat.min_value fmt_7_5);
  check float_t "max" (2.0 -. 0.03125) (Qformat.max_value fmt_7_5)

let test_range_us () =
  let f = Qformat.make ~n:4 ~f:2 Sign_mode.Us in
  check float_t "min" 0.0 (Qformat.min_value f);
  check float_t "max" 3.75 (Qformat.max_value f);
  check int_t "msb" 1 (Qformat.msb_pos f)

let test_of_positions_roundtrip () =
  let f = Qformat.of_positions ~msb:3 ~lsb:(-4) Sign_mode.Tc in
  check int_t "n" 8 (Qformat.n f);
  check int_t "f" 4 (Qformat.f f);
  check int_t "msb back" 3 (Qformat.msb_pos f);
  check int_t "lsb back" (-4) (Qformat.lsb_pos f)

let test_of_positions_invalid () =
  Alcotest.check_raises "msb < lsb"
    (Invalid_argument "Qformat.of_positions: msb (0) < lsb (1)") (fun () ->
      ignore (Qformat.of_positions ~msb:0 ~lsb:1 Sign_mode.Tc))

let test_negative_f () =
  (* f < 0: coarse grids with step > 1 *)
  let f = Qformat.make ~n:4 ~f:(-2) Sign_mode.Tc in
  check float_t "step 4" 4.0 (Qformat.step f);
  check float_t "max" 28.0 (Qformat.max_value f);
  check float_t "min" (-32.0) (Qformat.min_value f)

let test_contains () =
  check bool_t "0 in" true (Qformat.contains fmt_7_5 0.0);
  check bool_t "min in" true (Qformat.contains fmt_7_5 (-2.0));
  check bool_t "2.0 out" false (Qformat.contains fmt_7_5 2.0);
  check bool_t "max in" true (Qformat.contains fmt_7_5 (2.0 -. 0.03125))

let test_is_exact () =
  check bool_t "grid point" true (Qformat.is_exact fmt_7_5 0.15625);
  check bool_t "off grid" false (Qformat.is_exact fmt_7_5 0.16);
  check bool_t "out of range" false (Qformat.is_exact fmt_7_5 5.0)

let test_required_msb_examples () =
  (* the paper's F: x in (-1.5, 1.5) needs msb 1 *)
  let f vmin vmax =
    match Qformat.required_msb Sign_mode.Tc ~vmin ~vmax with
    | Some m -> m
    | None -> Alcotest.fail "unbounded"
  in
  check int_t "±1.5" 1 (f (-1.5) 1.5);
  check int_t "±1.0 (max side)" 1 (f (-1.0) 1.0);
  check int_t "exactly -2 fits msb 1" 1 (f (-2.0) 1.0);
  check int_t "+2 needs msb 2" 2 (f 0.0 2.0);
  check int_t "small" (-3) (f (-0.1) 0.1);
  check int_t "zero" 0 (f 0.0 0.0)

let test_required_msb_asymmetry () =
  (* two's complement asymmetry: [-2^m, 2^m) *)
  let f vmin vmax =
    Option.get (Qformat.required_msb Sign_mode.Tc ~vmin ~vmax)
  in
  check int_t "-4 fits m=2" 2 (f (-4.0) 0.0);
  check int_t "+4 needs m=3" 3 (f 0.0 4.0)

let test_required_msb_unsigned () =
  let f vmax = Option.get (Qformat.required_msb Sign_mode.Us ~vmin:0.0 ~vmax) in
  check int_t "3.9 -> top bit 1" 1 (f 3.9);
  check int_t "4.0 -> top bit 2" 2 (f 4.0);
  check int_t "0.7 -> top bit -1" (-1) (f 0.7)

let test_required_msb_infinite () =
  check bool_t "inf unbounded" true
    (Qformat.required_msb Sign_mode.Tc ~vmin:0.0 ~vmax:Float.infinity = None)

let test_widen_for_range () =
  match Qformat.widen_for_range fmt_7_5 ~vmin:(-3.0) ~vmax:3.0 with
  | Some f ->
      check int_t "msb grew" 2 (Qformat.msb_pos f);
      check int_t "lsb kept" (-5) (Qformat.lsb_pos f)
  | None -> Alcotest.fail "should be bounded"

let test_to_string () =
  check Alcotest.string "format" "<7,5,tc>" (Qformat.to_string fmt_7_5)

(* property: required_msb really is minimal and sufficient *)
let prop_required_msb_sound =
  QCheck2.Test.make ~name:"required_msb covers and is minimal" ~count:500
    QCheck2.Gen.(
      pair (float_range (-1000.0) 1000.0) (float_range 0.0 1000.0))
    (fun (a, width) ->
      let vmin = a and vmax = a +. width in
      match Qformat.required_msb Sign_mode.Tc ~vmin ~vmax with
      | None -> false
      | Some m ->
          let covers k = -.(2.0 ** Float.of_int k) <= vmin && vmax < 2.0 ** Float.of_int k in
          covers m && ((not (covers (m - 1))) || m = m)
          &&
          (* minimality: m-1 must fail unless m is forced by the other side *)
          not (covers (m - 1)))

let prop_step_times_cardinal =
  QCheck2.Test.make ~name:"step * 2^n spans the tc range" ~count:200
    QCheck2.Gen.(pair (int_range 1 40) (int_range (-10) 20))
    (fun (n, f) ->
      let fmt = Qformat.make ~n ~f Sign_mode.Tc in
      let span = Qformat.max_value fmt -. Qformat.min_value fmt in
      Float.abs (span -. ((Qformat.cardinal fmt -. 1.0) *. Qformat.step fmt))
      < 1e-9 *. Float.abs span +. 1e-12)

let suite =
  ( "qformat",
    [
      Alcotest.test_case "positions" `Quick test_positions;
      Alcotest.test_case "tc range" `Quick test_range_tc;
      Alcotest.test_case "us range" `Quick test_range_us;
      Alcotest.test_case "of_positions roundtrip" `Quick
        test_of_positions_roundtrip;
      Alcotest.test_case "of_positions invalid" `Quick
        test_of_positions_invalid;
      Alcotest.test_case "negative f" `Quick test_negative_f;
      Alcotest.test_case "contains" `Quick test_contains;
      Alcotest.test_case "is_exact" `Quick test_is_exact;
      Alcotest.test_case "required_msb examples" `Quick
        test_required_msb_examples;
      Alcotest.test_case "required_msb asymmetry" `Quick
        test_required_msb_asymmetry;
      Alcotest.test_case "required_msb unsigned" `Quick
        test_required_msb_unsigned;
      Alcotest.test_case "required_msb infinite" `Quick
        test_required_msb_infinite;
      Alcotest.test_case "widen_for_range" `Quick test_widen_for_range;
      Alcotest.test_case "to_string" `Quick test_to_string;
      Test_support.Qseed.to_alcotest prop_required_msb_sound;
      Test_support.Qseed.to_alcotest prop_step_times_cardinal;
    ] )
